package bus

import (
	"fmt"
	"strings"
	"sync"
)

// ---------------------------------------------------------------------------
// TMP36 — Analog Devices low-voltage temperature sensor (ADC peripheral).

// TMP36 models the Analog Devices TMP36: Vout = 0.5 V + 10 mV/°C, valid
// −40…+125 °C, per the TMP35/36/37 datasheet.
type TMP36 struct {
	Env *Environment
}

// Voltage implements AnalogSource.
func (s *TMP36) Voltage() float64 {
	t, _, _ := s.Env.Snapshot()
	if t < -40 {
		t = -40
	}
	if t > 125 {
		t = 125
	}
	return 0.5 + 0.010*t
}

// TMP36Celsius inverts the transfer function: given an ADC sample it returns
// degrees Celsius. This is the arithmetic a TMP36 driver performs.
func TMP36Celsius(sample uint16, ref float64, bits uint) float64 {
	max := float64(uint32(1)<<bits - 1)
	v := float64(sample) / max * ref
	return (v - 0.5) / 0.010
}

// ---------------------------------------------------------------------------
// HIH-4030 — Honeywell analog humidity sensor (ADC peripheral).

// HIH4030 models the Honeywell HIH-4030/31: at 5 V supply,
// Vout = Vsupply·(0.0062·RH + 0.16) with a first-order temperature
// compensation term RHtrue = RHsensor/(1.0546 − 0.00216·T), per the
// datasheet. The Grove module runs it at 3.3 V ratiometrically.
type HIH4030 struct {
	Env *Environment
	// Supply voltage; zero means 3.3 V.
	Supply float64
}

func (s *HIH4030) supply() float64 {
	if s.Supply == 0 {
		return 3.3
	}
	return s.Supply
}

// Voltage implements AnalogSource.
func (s *HIH4030) Voltage() float64 {
	t, rh, _ := s.Env.Snapshot()
	// The sensor's raw (uncompensated) reading at temperature t.
	sensorRH := rh * (1.0546 - 0.00216*t)
	return s.supply() * (0.0062*sensorRH + 0.16)
}

// HIH4030Humidity inverts the transfer function with temperature
// compensation — the math an HIH-4030 driver performs.
func HIH4030Humidity(sample uint16, ref float64, bits uint, supply, tempC float64) float64 {
	max := float64(uint32(1)<<bits - 1)
	v := float64(sample) / max * ref
	sensorRH := (v/supply - 0.16) / 0.0062
	return sensorRH / (1.0546 - 0.00216*tempC)
}

// ---------------------------------------------------------------------------
// ID-20LA — ID Innovations 125 kHz RFID reader (UART peripheral).

// ID20LA models the ID-20LA RFID card reader: when a card enters the field
// the module emits one ASCII frame over 9600 8N1 UART:
//
//	STX(0x02) | 10 ASCII data chars | 2 ASCII checksum chars | CR | LF | ETX(0x03)
//
// i.e. 12 printable characters framed by control bytes — exactly what the
// Listing 1 driver parses (it skips STX/ETX/CR/LF and accumulates 12 chars).
type ID20LA struct {
	mu   sync.Mutex
	uart *UART
}

// NewID20LA wires a reader to its UART.
func NewID20LA(u *UART) *ID20LA { return &ID20LA{uart: u} }

// Frame control bytes of the ID-20LA ASCII protocol.
const (
	STX = 0x02
	ETX = 0x03
	CR  = 0x0d
	LF  = 0x0a
)

// PresentCard simulates a card with the given 10-hex-digit identifier
// entering the field. It computes the XOR checksum the module appends and
// emits the full 16-byte frame. The identifier is upper-cased; it must be
// exactly 10 hex digits.
func (r *ID20LA) PresentCard(cardID string) error {
	cardID = strings.ToUpper(cardID)
	if len(cardID) != 10 {
		return fmt.Errorf("bus: card ID must be 10 hex digits, got %q", cardID)
	}
	var sum byte
	for i := 0; i < 10; i += 2 {
		hi, ok1 := hexVal(cardID[i])
		lo, ok2 := hexVal(cardID[i+1])
		if !ok1 || !ok2 {
			return fmt.Errorf("bus: card ID must be hex, got %q", cardID)
		}
		sum ^= hi<<4 | lo
	}
	frame := make([]byte, 0, 16)
	frame = append(frame, STX)
	frame = append(frame, cardID...)
	frame = append(frame, hexDigit(sum>>4), hexDigit(sum&0x0f))
	frame = append(frame, CR, LF, ETX)

	r.mu.Lock()
	defer r.mu.Unlock()
	r.uart.DeviceSend(frame)
	return nil
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}

func hexDigit(v byte) byte {
	if v < 10 {
		return '0' + v
	}
	return 'A' + v - 10
}

// ChecksumOK verifies a 12-character payload (10 data + 2 checksum chars) as
// read by a driver.
func ChecksumOK(payload []byte) bool {
	if len(payload) != 12 {
		return false
	}
	var sum byte
	for i := 0; i < 10; i += 2 {
		hi, ok1 := hexVal(payload[i])
		lo, ok2 := hexVal(payload[i+1])
		if !ok1 || !ok2 {
			return false
		}
		sum ^= hi<<4 | lo
	}
	hi, ok1 := hexVal(payload[10])
	lo, ok2 := hexVal(payload[11])
	return ok1 && ok2 && sum == hi<<4|lo
}
