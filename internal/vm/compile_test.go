package vm

import (
	"math/rand"
	"testing"
	"time"

	"micropnp/internal/bytecode"
	"micropnp/internal/driver"
	"micropnp/internal/dsl"
)

// enginePair loads the same program into two machines, pinning one to the
// reference interpreter. The compiled side must actually have compiled.
func enginePair(t testing.TB, prog *bytecode.Program) (compiled, interp *Machine) {
	t.Helper()
	mc, err := NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !mc.Compiled() {
		t.Fatalf("program did not compile; Engine()=%s", mc.Engine())
	}
	// A fresh Machine: the pair must not share static state.
	mi, err := NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	mi.SetInterp(true)
	if mi.Engine() != "interp" {
		t.Fatalf("oracle machine reports engine %s", mi.Engine())
	}
	return mc, mi
}

// runBoth executes one event on both engines and fails on any transcript
// divergence: the full RunResult, the error (trap kind, handler, PC), and
// the complete static state afterwards.
func runBoth(t testing.TB, mc, mi *Machine, name string, args []int32) (RunResult, error) {
	t.Helper()
	rc, ec := mc.Run(name, args)
	ri, ei := mi.Run(name, args)
	diffResults(t, name, args, rc, ec, ri, ei)
	for s := 0; s < mc.NumStatics(); s++ {
		c, i := mc.staticRef(s), mi.staticRef(s)
		if len(c) != len(i) {
			t.Fatalf("%s%v: static %d length diverged: compiled %d, interp %d", name, args, s, len(c), len(i))
		}
		for j := range c {
			if c[j] != i[j] {
				t.Fatalf("%s%v: static %d[%d] diverged: compiled %d, interp %d", name, args, s, j, c[j], i[j])
			}
		}
	}
	return rc, ec
}

// diffResults asserts two engine transcripts are identical.
func diffResults(t testing.TB, name string, args []int32, rc RunResult, ec error, ri RunResult, ei error) {
	t.Helper()
	if (ec == nil) != (ei == nil) {
		t.Fatalf("%s%v: error diverged: compiled %v, interp %v", name, args, ec, ei)
	}
	if ec != nil {
		tc, okc := ec.(*TrapError)
		ti, oki := ei.(*TrapError)
		if !okc || !oki {
			t.Fatalf("%s%v: non-trap error: compiled %v, interp %v", name, args, ec, ei)
		}
		if *tc != *ti {
			t.Fatalf("%s%v: trap diverged: compiled %+v, interp %+v", name, args, *tc, *ti)
		}
	}
	if rc.HasReturn != ri.HasReturn {
		t.Fatalf("%s%v: HasReturn diverged: compiled %v, interp %v", name, args, rc.HasReturn, ri.HasReturn)
	}
	if len(rc.Returned) != len(ri.Returned) {
		t.Fatalf("%s%v: Returned length diverged: compiled %v, interp %v", name, args, rc.Returned, ri.Returned)
	}
	for i := range rc.Returned {
		if rc.Returned[i] != ri.Returned[i] {
			t.Fatalf("%s%v: Returned diverged: compiled %v, interp %v", name, args, rc.Returned, ri.Returned)
		}
	}
	if rc.Instructions != ri.Instructions {
		t.Fatalf("%s%v: Instructions diverged: compiled %d, interp %d", name, args, rc.Instructions, ri.Instructions)
	}
	if rc.EmulatedTime != ri.EmulatedTime {
		t.Fatalf("%s%v: EmulatedTime diverged: compiled %v, interp %v", name, args, rc.EmulatedTime, ri.EmulatedTime)
	}
	if len(rc.Signals) != len(ri.Signals) {
		t.Fatalf("%s%v: signal count diverged: compiled %d, interp %d", name, args, len(rc.Signals), len(ri.Signals))
	}
	for i := range rc.Signals {
		sc, si := rc.Signals[i], ri.Signals[i]
		if sc.Dest != si.Dest || sc.Event != si.Event || len(sc.Args) != len(si.Args) {
			t.Fatalf("%s%v: signal %d diverged: compiled %+v, interp %+v", name, args, i, sc, si)
		}
		for j := range sc.Args {
			if sc.Args[j] != si.Args[j] {
				t.Fatalf("%s%v: signal %d args diverged: compiled %v, interp %v", name, args, i, sc.Args, si.Args)
			}
		}
	}
}

// embeddedPrograms compiles all six shipped drivers from their DSL source.
func embeddedPrograms(t testing.TB) map[string]*bytecode.Program {
	t.Helper()
	out := map[string]*bytecode.Program{}
	all := append(append([]driver.StandardDriver{}, driver.StandardDrivers...), driver.ExtendedDrivers...)
	for _, sd := range all {
		src, err := driver.Source(sd)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := dsl.Compile(src, uint32(sd.ID))
		if err != nil {
			t.Fatalf("compiling %s: %v", sd.Name, err)
		}
		out[sd.Name] = prog
	}
	if len(out) != 6 {
		t.Fatalf("expected the 6 embedded drivers, got %d", len(out))
	}
	return out
}

// TestCompiledMatchesInterpreterEmbeddedDrivers runs every handler of every
// embedded driver through both engines with randomized argument vectors and
// asserts full transcript bit-identity, including the evolving static state
// across multiple passes.
func TestCompiledMatchesInterpreterEmbeddedDrivers(t *testing.T) {
	for name, prog := range embeddedPrograms(t) {
		t.Run(name, func(t *testing.T) {
			mc, mi := enginePair(t, prog)
			rng := rand.New(rand.NewSource(42))
			for pass := 0; pass < 8; pass++ {
				for _, h := range prog.Handlers {
					args := make([]int32, h.NParams)
					for i := range args {
						switch pass % 3 {
						case 0:
							args[i] = rng.Int31n(1024)
						case 1:
							args[i] = rng.Int31() - 1<<30
						default:
							args[i] = int32(rng.Intn(3)) // exercise zero divisors/indices
						}
					}
					runBoth(t, mc, mi, h.Name, args)
				}
			}
		})
	}
}

// TestTrapParity is the trap table: each runtime fault kind must surface as
// the identical TrapError{Trap, Handler, PC} after the identical instruction
// count on both engines.
func TestTrapParity(t *testing.T) {
	mkProg := func(build func(a *bytecode.Assembler)) *bytecode.Program {
		a := bytecode.NewAssembler()
		build(a)
		code, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		ret := []byte{byte(bytecode.OpReturnVoid)}
		return &bytecode.Program{
			DeviceID: 1,
			Statics:  []bytecode.StaticDef{{Size: 1}, {Size: 4}},
			Consts:   []string{"this", "ev"},
			Handlers: []bytecode.Handler{
				{Name: "init", Code: ret},
				{Name: "destroy", Code: ret},
				{Name: "boom", NParams: 2, Code: code},
			},
		}
	}
	cases := []struct {
		name string
		trap Trap
		fuel int
		prog *bytecode.Program
	}{
		{
			name: "fuel exhaustion mid-loop",
			trap: TrapFuelExhausted,
			fuel: 100,
			prog: mkProg(func(a *bytecode.Assembler) {
				a.Label("top")
				a.Emit(bytecode.OpLoadStatic, 0)
				a.Push(1)
				a.Emit(bytecode.OpAdd)
				a.Emit(bytecode.OpStoreStatic, 0)
				a.Jump(bytecode.OpJmp, "top")
			}),
		},
		{
			name: "stack overflow",
			trap: TrapStackOverflow,
			prog: mkProg(func(a *bytecode.Assembler) {
				for i := 0; i < 70; i++ { // MaxStack defaults to 64
					a.Push(int32(i))
				}
				a.Emit(bytecode.OpReturnVoid)
			}),
		},
		{
			name: "stack underflow",
			trap: TrapStackOverflow,
			prog: mkProg(func(a *bytecode.Assembler) {
				a.Emit(bytecode.OpDrop)
			}),
		},
		{
			// Dup declares pops=0 in stackEffect, so the empty-stack read
			// is caught by a dedicated in-op check rather than the generic
			// bound; both engines must agree it traps (found by fuzzing).
			name: "dup on empty stack",
			trap: TrapStackOverflow,
			prog: mkProg(func(a *bytecode.Assembler) {
				a.Emit(bytecode.OpDup)
			}),
		},
		{
			name: "div by zero",
			trap: TrapDivByZero,
			prog: mkProg(func(a *bytecode.Assembler) {
				a.Emit(bytecode.OpLoadLocal, 0)
				a.Emit(bytecode.OpLoadLocal, 1)
				a.Emit(bytecode.OpDiv)
				a.Emit(bytecode.OpReturnTop)
			}),
		},
		{
			name: "mod by zero",
			trap: TrapDivByZero,
			prog: mkProg(func(a *bytecode.Assembler) {
				a.Push(7)
				a.Push(0)
				a.Emit(bytecode.OpMod)
				a.Emit(bytecode.OpReturnTop)
			}),
		},
		{
			name: "index out of range load",
			trap: TrapIndexRange,
			prog: mkProg(func(a *bytecode.Assembler) {
				a.Emit(bytecode.OpLoadLocal, 0)
				a.Emit(bytecode.OpLoadElem, 1)
				a.Emit(bytecode.OpReturnTop)
			}),
		},
		{
			name: "index out of range store",
			trap: TrapIndexRange,
			prog: mkProg(func(a *bytecode.Assembler) {
				a.Push(9) // index past the 4-element slot
				a.Push(1) // value
				a.Emit(bytecode.OpStoreElem, 1)
				a.Emit(bytecode.OpReturnVoid)
			}),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mc, mi := enginePair(t, tc.prog)
			if tc.fuel != 0 {
				mc.Fuel, mi.Fuel = tc.fuel, tc.fuel
			}
			// Args chosen so div/index cases actually fault: locals 0,1 = 5,0.
			res, err := runBoth(t, mc, mi, "boom", []int32{5, 0})
			te, ok := err.(*TrapError)
			if !ok {
				t.Fatalf("expected a trap, got err=%v result=%+v", err, res)
			}
			if te.Trap != tc.trap || te.Handler != "boom" {
				t.Fatalf("expected trap %s in boom, got %+v", tc.trap, te)
			}
			if res.Instructions == 0 {
				t.Fatal("trap reported before any instruction executed")
			}
		})
	}
}

// TestCompiledFallbackAndEscapeHatch covers the two interpreter paths: a
// program the compiler rejects falls back automatically, and SetInterp pins
// a compilable program to the oracle.
func TestCompiledFallbackAndEscapeHatch(t *testing.T) {
	prog := compile(t, arithDriver, 1)

	// compileProgram must reject a handler with an unknown opcode (the
	// forward-compatibility fallback NewMachine relies on). Such programs
	// cannot pass Verify, so drive the compiler directly.
	bad := &bytecode.Program{
		DeviceID: 1,
		Handlers: []bytecode.Handler{{Name: "init", Code: []byte{0xEE}}},
	}
	if _, ok := compileProgram(bad); ok {
		t.Fatal("compileProgram accepted an invalid opcode")
	}

	m, err := NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Compiled() || m.Engine() != "compiled" {
		t.Fatalf("expected compiled engine, got %s", m.Engine())
	}
	m.SetInterp(true)
	if m.Compiled() || m.Engine() != "interp" {
		t.Fatalf("SetInterp(true) did not pin the interpreter: %s", m.Engine())
	}
	if _, err := m.Run("compute", []int32{6, 3}); err != nil {
		t.Fatal(err)
	}
	m.SetInterp(false)
	if !m.Compiled() {
		t.Fatal("SetInterp(false) did not release the compiled engine")
	}

	// Simulated fallback: a machine whose compile "failed" still serves
	// Run through the interpreter.
	m.compiled = nil
	if m.Engine() != "interp" {
		t.Fatalf("fallback machine reports %s", m.Engine())
	}
	if _, err := m.Run("compute", []int32{6, 3}); err != nil {
		t.Fatal(err)
	}
}

// TestCompiledZeroAllocRun asserts the scratch-backed RunResult contract on
// both engines: a signal-free compute handler runs allocation-free after
// the scratch warms up.
func TestCompiledZeroAllocRun(t *testing.T) {
	prog := compile(t, arithDriver, 1)
	for _, pin := range []bool{false, true} {
		m, err := NewMachine(prog)
		if err != nil {
			t.Fatal(err)
		}
		m.SetInterp(pin)
		args := []int32{40, 4}
		m.Run("compute", args) // warm the scratch stack
		n := testing.AllocsPerRun(100, func() {
			if _, err := m.Run("compute", args); err != nil {
				t.Fatal(err)
			}
		})
		if n != 0 {
			t.Errorf("engine %s: %v allocs per Run, want 0", m.Engine(), n)
		}
	}
}

// TestCompiledRecostOnTimeModelChange reassigns Machine.Time after load and
// asserts the engines still agree on EmulatedTime (the compiled engine must
// recost its cached per-instruction durations).
func TestCompiledRecostOnTimeModelChange(t *testing.T) {
	prog := compile(t, arithDriver, 1)
	mc, mi := enginePair(t, prog)
	custom := AVRTimeModel{Base: 3 * time.Microsecond, PushCost: 500 * time.Nanosecond, PopCost: 700 * time.Nanosecond, Dispatch: time.Millisecond}
	mc.Time, mi.Time = custom, custom
	res, err := runBoth(t, mc, mi, "compute", []int32{10, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.EmulatedTime == 0 {
		t.Fatal("no emulated time accrued under the custom model")
	}
}

// TestStaticRefNoCopy pins the no-copy accessor the differential harness
// depends on: it must alias the live slot, not snapshot it.
func TestStaticRefNoCopy(t *testing.T) {
	prog := compile(t, arithDriver, 1)
	m, err := NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	ref := m.staticRef(0)
	if ref == nil {
		t.Fatal("staticRef(0) = nil")
	}
	if _, err := m.Run("compute", []int32{21, 3}); err != nil {
		t.Fatal(err)
	}
	if cp := m.Static(0); cp[0] != ref[0] {
		t.Fatalf("staticRef did not alias live state: ref %d, copy %d", ref[0], cp[0])
	}
	if m.staticRef(-1) != nil || m.staticRef(m.NumStatics()) != nil {
		t.Fatal("out-of-range staticRef must return nil")
	}
	n := testing.AllocsPerRun(100, func() { _ = m.staticRef(0) })
	if n != 0 {
		t.Errorf("staticRef allocates (%v allocs), defeating its purpose", n)
	}
}

// TestCompiledSignalOrderAndArgs drives a multi-signal handler through both
// engines and also sanity-checks the compiled transcript against literal
// expectations (not just against the oracle).
func TestCompiledSignalOrderAndArgs(t *testing.T) {
	const src = `import adc;

int32_t n;

event init():
    n = 0;

event destroy():
    pass;

event first(int32_t a, int32_t b):
    pass;

event second(int32_t s):
    pass;

event burst(int32_t a, int32_t b):
    signal this.first(a, b);
    signal adc.read();
    signal this.second(a + b);
    n = n + 1;
`
	prog := compile(t, src, 1)
	mc, mi := enginePair(t, prog)
	res, err := runBoth(t, mc, mi, "burst", []int32{7, 8})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		dest, event string
		args        []int32
	}{
		{"this", "first", []int32{7, 8}},
		{"adc", "read", nil},
		{"this", "second", []int32{15}},
	}
	if len(res.Signals) != len(want) {
		t.Fatalf("got %d signals, want %d", len(res.Signals), len(want))
	}
	for i, w := range want {
		s := res.Signals[i]
		if s.Dest != w.dest || s.Event != w.event || len(s.Args) != len(w.args) {
			t.Fatalf("signal %d = %+v, want %+v", i, s, w)
		}
		for j := range w.args {
			if s.Args[j] != w.args[j] {
				t.Fatalf("signal %d args = %v, want %v", i, s.Args, w.args)
			}
		}
	}
}

// TestRuntimeEnginesConverge runs the full Runtime dispatch loop (router,
// error events, emulated-time accounting) over both engines and compares
// the aggregate counters — the level the Thing actually observes.
func TestRuntimeEnginesConverge(t *testing.T) {
	for name, prog := range embeddedPrograms(t) {
		t.Run(name, func(t *testing.T) {
			run := func(interp bool) (dispatches, traps int, et time.Duration) {
				rt, err := NewRuntime(prog, stubLibsFor(prog)...)
				if err != nil {
					t.Fatal(err)
				}
				rt.Machine().SetInterp(interp)
				rt.Start()
				rt.Post("read")
				rt.RunUntilIdle(0)
				rt.Post("read", 1)
				rt.RunUntilIdle(0)
				rt.Stop()
				return rt.Dispatches, rt.Traps, rt.EmulatedTime
			}
			dc, tc, etc := run(false)
			di, ti, eti := run(true)
			if dc != di || tc != ti || etc != eti {
				t.Fatalf("runtime counters diverged: compiled (%d dispatches, %d traps, %v), interp (%d, %d, %v)",
					dc, tc, etc, di, ti, eti)
			}
		})
	}
}

// stubLib satisfies any library import without touching hardware models:
// invokes are swallowed, so only the VM-side transcript is compared.
type stubLib struct{ name string }

func (l *stubLib) Name() string           { return l.name }
func (l *stubLib) Attach(*Runtime)        {}
func (l *stubLib) Invoke(string, []int32) {}
func (l *stubLib) Detach()                {}
func stubLibsFor(p *bytecode.Program) []Library {
	libs := make([]Library, 0, len(p.Imports))
	for _, imp := range p.Imports {
		libs = append(libs, &stubLib{name: imp})
	}
	return libs
}
