package vm

import (
	"fmt"
	"sort"
	"time"

	"micropnp/internal/bytecode"
)

// Library is a native interconnect library: platform-specific code exposed
// to drivers as signalable operations (Figure 8). Libraries communicate
// results back by posting events to the runtime.
type Library interface {
	// Name is the import name drivers use.
	Name() string
	// Attach binds the library to a runtime (called once at install).
	Attach(rt *Runtime)
	// Invoke performs an operation signalled by the driver. Results and
	// errors are delivered asynchronously via rt.Post / rt.PostError.
	Invoke(op string, args []int32)
	// Detach releases platform resources (driver removal).
	Detach()
}

// Scheduler is an external virtual-clock source. When a Runtime is given a
// Scheduler (SetScheduler), its timers run on that clock instead of the
// internal one — a µPnP Thing wires its drivers to the network simulator's
// clock so that driver timeouts, sensor conversions and protocol traffic
// advance coherently.
type Scheduler interface {
	Now() time.Duration
	Schedule(delay time.Duration, fn func())
}

// Runtime hosts one installed driver: the virtual machine, the event router
// and the driver's native library bindings, advanced under a virtual clock.
// It is the per-driver slice of the µPnP execution environment.
type Runtime struct {
	machine *Machine
	router  *Router
	libs    map[string]Library
	sched   Scheduler // nil = internal clock

	now    time.Duration
	timers []timerEntry

	onReturn func([]int32)

	// EmulatedTime accumulates the AVR cost model over all dispatches.
	EmulatedTime time.Duration
	// Dispatches counts handler executions.
	Dispatches int
	// Traps counts runtime faults.
	Traps int

	inErrorDispatch bool
	started         bool
}

type timerEntry struct {
	at time.Duration
	fn func()
}

// NewRuntime loads a verified driver and binds its native libraries. Every
// library the driver imports must be supplied.
func NewRuntime(prog *bytecode.Program, libs ...Library) (*Runtime, error) {
	m, err := NewMachine(prog)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{machine: m, router: NewRouter(), libs: map[string]Library{}}
	for _, l := range libs {
		rt.libs[l.Name()] = l
	}
	for _, imp := range prog.Imports {
		lib, ok := rt.libs[imp]
		if !ok {
			return nil, fmt.Errorf("vm: driver imports %q but no such library was provided", imp)
		}
		lib.Attach(rt)
	}
	return rt, nil
}

// Machine exposes the underlying interpreter (diagnostics and tests).
func (rt *Runtime) Machine() *Machine { return rt.machine }

// Router exposes the event router.
func (rt *Runtime) Router() *Router { return rt.router }

// SetScheduler attaches an external clock. Call before Start.
func (rt *Runtime) SetScheduler(s Scheduler) { rt.sched = s }

// Now returns the current virtual time.
func (rt *Runtime) Now() time.Duration {
	if rt.sched != nil {
		return rt.sched.Now()
	}
	return rt.now
}

// OnReturn registers the callback receiving values produced by the driver's
// return statements (delivered to the pending remote operation).
func (rt *Runtime) OnReturn(fn func([]int32)) { rt.onReturn = fn }

// Post enqueues a regular event for the driver.
func (rt *Runtime) Post(name string, args ...int32) {
	e := Event{Name: name}
	e.packArgs(args)
	rt.router.Post(e)
}

// PostError enqueues a prioritised error event for the driver.
func (rt *Runtime) PostError(name string, args ...int32) {
	e := Event{Name: name, IsError: true}
	e.packArgs(args)
	rt.router.Post(e)
}

// Schedule runs fn at virtual time Now()+delay. With an external scheduler
// the callback also drains the event queue afterwards, since no one else
// steps the runtime.
func (rt *Runtime) Schedule(delay time.Duration, fn func()) {
	if rt.sched != nil {
		rt.sched.Schedule(delay, func() {
			fn()
			rt.RunUntilIdle(0)
		})
		return
	}
	rt.timers = append(rt.timers, timerEntry{at: rt.now + delay, fn: fn})
	sort.SliceStable(rt.timers, func(i, j int) bool { return rt.timers[i].at < rt.timers[j].at })
}

// Start fires the driver's init event (called when the peripheral is plugged
// in and the driver installed) and drains the queues.
func (rt *Runtime) Start() {
	if rt.started {
		return
	}
	rt.started = true
	rt.Post("init")
	rt.RunUntilIdle(0)
}

// Stop fires destroy (peripheral unplugged), drains, and detaches libraries.
func (rt *Runtime) Stop() {
	if !rt.started {
		return
	}
	rt.Post("destroy")
	rt.RunUntilIdle(0)
	for _, imp := range rt.machine.prog.Imports {
		if lib := rt.libs[imp]; lib != nil {
			lib.Detach()
		}
	}
	rt.started = false
}

// Step dispatches one queued event, or — when the queues are empty and the
// internal clock is in use — advances the clock to the next timer. It
// reports whether any progress was made.
func (rt *Runtime) Step() bool {
	if e, ok := rt.router.Next(); ok {
		rt.dispatch(e)
		return true
	}
	if rt.sched != nil {
		return false // external timers fire through the scheduler
	}
	if len(rt.timers) > 0 {
		t := rt.timers[0]
		rt.timers = rt.timers[1:]
		if t.at > rt.now {
			rt.now = t.at
		}
		t.fn()
		return true
	}
	return false
}

// RunUntilIdle steps until no events or timers remain. maxSteps 0 means the
// default bound (1e6). It returns the number of steps taken.
func (rt *Runtime) RunUntilIdle(maxSteps int) int {
	if maxSteps <= 0 {
		maxSteps = 1_000_000
	}
	steps := 0
	for steps < maxSteps && rt.Step() {
		steps++
	}
	return steps
}

// dispatch runs one event through the machine and processes its outcome.
func (rt *Runtime) dispatch(e Event) {
	rt.Dispatches++
	rt.EmulatedTime += rt.machine.Time.Dispatch
	wasError := rt.inErrorDispatch
	rt.inErrorDispatch = e.IsError
	res, err := rt.machine.Run(e.Name, e.payload())
	rt.EmulatedTime += res.EmulatedTime
	rt.now += res.EmulatedTime + rt.machine.Time.Dispatch

	if err != nil {
		rt.Traps++
		var te *TrapError
		if ok := asTrap(err, &te); ok && !e.IsError {
			// Surface the trap to the driver's error handlers; traps inside
			// error handlers are dropped to guarantee progress.
			rt.PostError(string(te.Trap))
		}
		rt.inErrorDispatch = wasError
		return
	}
	for _, s := range res.Signals {
		rt.routeSignal(s)
	}
	if res.HasReturn && rt.onReturn != nil {
		rt.onReturn(res.Returned)
	}
	rt.inErrorDispatch = wasError
}

func asTrap(err error, out **TrapError) bool {
	te, ok := err.(*TrapError)
	if ok {
		*out = te
	}
	return ok
}

// routeSignal forwards one emitted signal: "this" back to the driver's own
// queue, anything else to the named native library.
func (rt *Runtime) routeSignal(s Signal) {
	if s.Dest == "this" {
		// Signal.Args are scratch-backed and expire at the machine's next
		// Run; the event queue outlives that, so the self-post takes a copy.
		// Library.Invoke below needs none — invocation is synchronous and
		// libraries read args before returning.
		rt.router.Post(Event{Name: s.Event, Args: append([]int32(nil), s.Args...), Source: "this"})
		return
	}
	lib, ok := rt.libs[s.Dest]
	if !ok {
		// Verified drivers only signal imported libraries; treat anything
		// else as a driver bug surfaced through the error queue.
		rt.PostError("badBytecode")
		return
	}
	lib.Invoke(s.Event, s.Args)
}
