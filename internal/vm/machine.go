package vm

import (
	"fmt"
	"time"

	"micropnp/internal/bytecode"
)

// Trap identifies a runtime fault raised by the interpreter. Traps become
// error events (the µPnP DSL models I/O and runtime errors uniformly).
type Trap string

// Trap kinds.
const (
	TrapDivByZero     Trap = "divByZero"
	TrapStackOverflow Trap = "stackOverflow"
	TrapIndexRange    Trap = "indexOutOfBounds"
	TrapFuelExhausted Trap = "fuelExhausted"
	TrapBadBytecode   Trap = "badBytecode"
)

// TrapError wraps a trap with its context.
type TrapError struct {
	Trap    Trap
	Handler string
	PC      int
}

func (e *TrapError) Error() string {
	return fmt.Sprintf("vm: trap %s in handler %q at pc %d", e.Trap, e.Handler, e.PC)
}

// Signal is an event emission recorded during a handler run. Signals are
// queued and processed after the handler completes, preserving
// run-to-completion atomicity.
type Signal struct {
	Dest  string
	Event string
	Args  []int32
}

// RunResult reports one handler execution.
type RunResult struct {
	// HasReturn is set when the handler executed a return with a value;
	// Returned holds the value(s) — one element for scalars, the whole
	// slot for array returns.
	HasReturn bool
	Returned  []int32
	// Signals emitted, in program order. Signals, Returned and each
	// Signal.Args are backed by per-Machine scratch: they are valid until
	// the next Run on the same Machine and must be copied to be retained.
	Signals []Signal
	// Instructions executed.
	Instructions int
	// EmulatedTime is the cost of the run under the AVR time model.
	EmulatedTime time.Duration
}

// Machine executes the handlers of one installed driver. It owns the
// driver's static state. A Machine is not safe for concurrent use; the
// event router serialises handler executions (handlers are atomic).
//
// Handlers are compiled to a pre-decoded direct-threaded form at load time
// (see compile.go); the bytecode interpreter is kept as the reference
// oracle and as the automatic fallback for programs the compiler does not
// support. Both engines are bit-identical in every observable: trap
// kind/PC, instruction count, emulated time, signal order and the
// scratch-backed RunResult contract.
type Machine struct {
	prog    *bytecode.Program
	statics [][]int32

	// compiled holds the pre-decoded handlers in program order; nil when
	// the program fell back to the interpreter. A linear scan beats a map
	// for driver-sized handler sets (≤ ~10 names) and matches the
	// interpreter's own prog.Handler lookup cost.
	compiled []*compiledHandler
	// costModel is the time model the compiled instruction costs were
	// computed under; Run recosts when Time was reassigned.
	costModel AVRTimeModel
	// interp forces the reference interpreter even when compiled forms
	// exist (the oracle side of differential tests, and the
	// WithCompiledDrivers(false) escape hatch).
	interp bool

	// MaxStack bounds the operand stack (default 64 cells).
	MaxStack int
	// Fuel bounds instructions per handler run (default 100000); handlers
	// run to completion, so unbounded loops are a driver bug surfaced as a
	// trap rather than a wedged runtime.
	Fuel int
	// Time is the emulated cost model (default DefaultAVRTimeModel).
	Time AVRTimeModel

	// scratch is the reusable operand-stack backing array. A Machine is
	// single-threaded and handlers run to completion without re-entering
	// Run (native libraries post events instead of calling back), so one
	// scratch stack per machine suffices and keeps Run allocation-free.
	scratch []int32
	// sigScratch and retScratch back RunResult.Signals and .Returned the
	// same way: the result's slices are valid until the next Run.
	sigScratch []Signal
	retScratch []int32
	// argArena backs Signal.Args in the compiled engine (the interpreter
	// allocates fresh slices, but that is an implementation detail — the
	// contract for callers of either engine is the weaker one: Args, like
	// Signals itself, are valid only until the next Run; copy what you
	// keep). argOff is the bump-allocation watermark, reset per Run.
	argArena []int32
	argOff   int
}

// argAlloc carves an n-cell Signal.Args slot out of the arena. When the
// arena is exhausted it is replaced, not grown in place: slices already
// handed out this run keep pointing into the old array, which still holds
// their data. Slots are capacity-clamped so an appending caller cannot
// clobber a neighbouring signal's args.
func (m *Machine) argAlloc(n int) []int32 {
	if len(m.argArena)-m.argOff < n {
		sz := 256
		if n > sz {
			sz = n
		}
		m.argArena = make([]int32, sz)
		m.argOff = 0
	}
	s := m.argArena[m.argOff : m.argOff+n : m.argOff+n]
	m.argOff += n
	return s
}

// NewMachine verifies and loads a driver program, compiling its handlers
// to the direct-threaded form. Programs the compiler does not support fall
// back to the interpreter silently — installation never fails for that.
func NewMachine(prog *bytecode.Program) (*Machine, error) {
	if err := prog.Verify(); err != nil {
		return nil, err
	}
	m := &Machine{prog: prog, MaxStack: 64, Fuel: 100_000, Time: DefaultAVRTimeModel}
	m.statics = make([][]int32, len(prog.Statics))
	for i, s := range prog.Statics {
		m.statics[i] = make([]int32, s.Size)
	}
	if compiled, ok := compileProgram(prog); ok {
		m.compiled = compiled
		m.recost()
	}
	return m, nil
}

// SetInterp forces (or releases) the reference interpreter for all handler
// runs. Differential tests pin one Machine of a pair to the oracle this
// way; deployments reach it through WithCompiledDrivers(false).
func (m *Machine) SetInterp(on bool) { m.interp = on }

// Compiled reports whether the compiled engine serves Run: the program
// compiled and the interpreter was not forced.
func (m *Machine) Compiled() bool { return m.compiled != nil && !m.interp }

// Engine names the engine serving Run ("compiled" or "interp").
func (m *Machine) Engine() string {
	if m.Compiled() {
		return "compiled"
	}
	return "interp"
}

// Program returns the loaded driver.
func (m *Machine) Program() *bytecode.Program { return m.prog }

// Static returns a copy of a static slot (for tests and diagnostics).
func (m *Machine) Static(i int) []int32 {
	if i < 0 || i >= len(m.statics) {
		return nil
	}
	return append([]int32(nil), m.statics[i]...)
}

// staticRef returns a static slot without copying. The differential
// harness compares the full static state of two machines after every run;
// going through Static's defensive copy there would perturb the alloc
// counts the same tests assert on the zero-alloc Run contract.
func (m *Machine) staticRef(i int) []int32 {
	if i < 0 || i >= len(m.statics) {
		return nil
	}
	return m.statics[i]
}

// NumStatics returns the number of static slots.
func (m *Machine) NumStatics() int { return len(m.statics) }

// HasHandler reports whether the driver defines the named handler.
func (m *Machine) HasHandler(name string) bool { return m.prog.Handler(name) != nil }

// Run executes the named handler to completion with the given arguments.
// A missing handler is not an error: the event is silently dropped (drivers
// handle only the events they care about) and an empty result returned.
// Compiled programs run the direct-threaded form; everything else (and
// machines pinned with SetInterp) runs the reference interpreter.
func (m *Machine) Run(name string, args []int32) (RunResult, error) {
	if m.compiled != nil && !m.interp {
		var ch *compiledHandler
		for _, c := range m.compiled {
			if c.name == name {
				ch = c
				break
			}
		}
		if ch == nil {
			return RunResult{}, nil
		}
		if m.costModel != m.Time {
			m.recost()
		}
		var res RunResult
		err := m.runCompiled(ch, args, &res)
		return res, err
	}
	return m.runInterp(name, args)
}

// runInterp is the reference bytecode interpreter — the behavioural oracle
// the compiled engine is differentially tested against.
func (m *Machine) runInterp(name string, args []int32) (RunResult, error) {
	h := m.prog.Handler(name)
	if h == nil {
		return RunResult{}, nil
	}
	var locals [bytecode.MaxLocals]int32
	for i, a := range args {
		if i >= int(h.NParams) || i >= len(locals) {
			break
		}
		locals[i] = a
	}
	var res RunResult
	res.Signals = m.sigScratch[:0]
	if cap(m.scratch) < m.MaxStack {
		m.scratch = make([]int32, 0, m.MaxStack)
	}
	stack := m.scratch[:0]
	code := h.Code
	trap := func(t Trap, pc int) (RunResult, error) {
		return res, &TrapError{Trap: t, Handler: name, PC: pc}
	}

	pop := func() int32 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}

	for pc := 0; pc < len(code); {
		if res.Instructions >= m.Fuel {
			return trap(TrapFuelExhausted, pc)
		}
		res.Instructions++
		op := bytecode.Op(code[pc])
		w := op.OperandWidth()
		if w < 0 || pc+1+w > len(code) {
			return trap(TrapBadBytecode, pc)
		}
		operand := code[pc+1 : pc+1+w]
		next := pc + 1 + w
		pushes, pops := stackEffect(op, operand)
		if len(stack)-pops < 0 {
			return trap(TrapStackOverflow, pc)
		}
		if len(stack)-pops+pushes > m.MaxStack {
			return trap(TrapStackOverflow, pc)
		}
		res.EmulatedTime += m.Time.InstructionCost(pushes, pops)

		switch op {
		case bytecode.OpNop:

		case bytecode.OpPushI8:
			stack = append(stack, int32(int8(operand[0])))
		case bytecode.OpPushI16:
			stack = append(stack, int32(int16(uint16(operand[0])<<8|uint16(operand[1]))))
		case bytecode.OpPushI32:
			v := uint32(operand[0])<<24 | uint32(operand[1])<<16 | uint32(operand[2])<<8 | uint32(operand[3])
			stack = append(stack, int32(v))
		case bytecode.OpDup:
			// stackEffect models Dup as a pure push for the cost model, so
			// the generic bounds check above does not cover the read of the
			// current top; an empty stack must trap, not panic.
			if len(stack) == 0 {
				return trap(TrapStackOverflow, pc)
			}
			stack = append(stack, stack[len(stack)-1])
		case bytecode.OpDrop:
			pop()

		case bytecode.OpLoadStatic:
			stack = append(stack, m.statics[operand[0]][0])
		case bytecode.OpStoreStatic:
			m.statics[operand[0]][0] = pop()
		case bytecode.OpLoadLocal:
			stack = append(stack, locals[operand[0]])
		case bytecode.OpStoreLocal:
			locals[operand[0]] = pop()
		case bytecode.OpLoadElem:
			idx := pop()
			slot := m.statics[operand[0]]
			if idx < 0 || int(idx) >= len(slot) {
				return trap(TrapIndexRange, pc)
			}
			stack = append(stack, slot[idx])
		case bytecode.OpStoreElem:
			val := pop()
			idx := pop()
			slot := m.statics[operand[0]]
			if idx < 0 || int(idx) >= len(slot) {
				return trap(TrapIndexRange, pc)
			}
			slot[idx] = val

		case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv, bytecode.OpMod,
			bytecode.OpBitAnd, bytecode.OpBitOr, bytecode.OpBitXor, bytecode.OpShl, bytecode.OpShr,
			bytecode.OpEq, bytecode.OpNe, bytecode.OpLt, bytecode.OpLe, bytecode.OpGt, bytecode.OpGe:
			r := pop()
			l := pop()
			v, t := binaryOp(op, l, r)
			if t != "" {
				return trap(t, pc)
			}
			stack = append(stack, v)

		case bytecode.OpNeg:
			stack[len(stack)-1] = -stack[len(stack)-1]
		case bytecode.OpNot:
			if stack[len(stack)-1] == 0 {
				stack[len(stack)-1] = 1
			} else {
				stack[len(stack)-1] = 0
			}

		case bytecode.OpJmp:
			pc = next + int(int16(uint16(operand[0])<<8|uint16(operand[1])))
			continue
		case bytecode.OpJz:
			if pop() == 0 {
				pc = next + int(int16(uint16(operand[0])<<8|uint16(operand[1])))
				continue
			}
		case bytecode.OpJnz:
			if pop() != 0 {
				pc = next + int(int16(uint16(operand[0])<<8|uint16(operand[1])))
				continue
			}

		case bytecode.OpSignal:
			argc := int(operand[2])
			if len(stack) < argc {
				return trap(TrapStackOverflow, pc)
			}
			args := make([]int32, argc)
			for i := argc - 1; i >= 0; i-- {
				args[i] = pop()
			}
			res.Signals = append(res.Signals, Signal{
				Dest:  m.prog.Consts[operand[0]],
				Event: m.prog.Consts[operand[1]],
				Args:  args,
			})
			m.sigScratch = res.Signals

		case bytecode.OpReturnVoid:
			return res, nil
		case bytecode.OpReturnTop:
			res.HasReturn = true
			m.retScratch = append(m.retScratch[:0], pop())
			res.Returned = m.retScratch
			return res, nil
		case bytecode.OpReturnStatic:
			res.HasReturn = true
			m.retScratch = append(m.retScratch[:0], m.statics[operand[0]]...)
			res.Returned = m.retScratch
			return res, nil
		case bytecode.OpHalt:
			return res, nil

		default:
			return trap(TrapBadBytecode, pc)
		}
		pc = next
	}
	return res, nil
}

// binaryOp evaluates a two-operand instruction; a non-empty trap reports a
// fault (division by zero).
func binaryOp(op bytecode.Op, l, r int32) (int32, Trap) {
	switch op {
	case bytecode.OpAdd:
		return l + r, ""
	case bytecode.OpSub:
		return l - r, ""
	case bytecode.OpMul:
		return l * r, ""
	case bytecode.OpDiv:
		if r == 0 {
			return 0, TrapDivByZero
		}
		return l / r, ""
	case bytecode.OpMod:
		if r == 0 {
			return 0, TrapDivByZero
		}
		return l % r, ""
	case bytecode.OpBitAnd:
		return l & r, ""
	case bytecode.OpBitOr:
		return l | r, ""
	case bytecode.OpBitXor:
		return l ^ r, ""
	case bytecode.OpShl:
		return l << (uint32(r) & 31), ""
	case bytecode.OpShr:
		// Arithmetic shift, matching C/Go signed semantics — drivers use
		// >> in signed fixed-point math (e.g. the BMP180 compensation).
		return l >> (uint32(r) & 31), ""
	case bytecode.OpEq:
		return b2i(l == r), ""
	case bytecode.OpNe:
		return b2i(l != r), ""
	case bytecode.OpLt:
		return b2i(l < r), ""
	case bytecode.OpLe:
		return b2i(l <= r), ""
	case bytecode.OpGt:
		return b2i(l > r), ""
	case bytecode.OpGe:
		return b2i(l >= r), ""
	}
	return 0, TrapBadBytecode
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// stackEffect returns (pushes, pops) for the time model and bounds checks.
func stackEffect(op bytecode.Op, operand []byte) (int, int) {
	switch op {
	case bytecode.OpPushI8, bytecode.OpPushI16, bytecode.OpPushI32,
		bytecode.OpLoadStatic, bytecode.OpLoadLocal, bytecode.OpDup:
		return 1, 0
	case bytecode.OpDrop, bytecode.OpStoreStatic, bytecode.OpStoreLocal,
		bytecode.OpJz, bytecode.OpJnz, bytecode.OpReturnTop:
		return 0, 1
	case bytecode.OpLoadElem:
		return 1, 1
	case bytecode.OpStoreElem:
		return 0, 2
	case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv, bytecode.OpMod,
		bytecode.OpBitAnd, bytecode.OpBitOr, bytecode.OpBitXor, bytecode.OpShl, bytecode.OpShr,
		bytecode.OpEq, bytecode.OpNe, bytecode.OpLt, bytecode.OpLe, bytecode.OpGt, bytecode.OpGe:
		return 1, 2
	case bytecode.OpNeg, bytecode.OpNot:
		return 1, 1
	case bytecode.OpSignal:
		if len(operand) == 3 {
			return 0, int(operand[2])
		}
		return 0, 0
	default:
		return 0, 0
	}
}
