package vm

import (
	"fmt"
	"testing"

	"micropnp/internal/bytecode"
	"micropnp/internal/driver"
	"micropnp/internal/dsl"
)

// synthOps is the op menu the fuzz generator draws from. Every opcode of
// the ISA appears so the differential fuzz covers the whole instruction
// set, not just what the DSL code generator happens to emit.
var synthOps = []bytecode.Op{
	bytecode.OpNop, bytecode.OpPushI8, bytecode.OpPushI16, bytecode.OpPushI32,
	bytecode.OpDup, bytecode.OpDrop,
	bytecode.OpLoadStatic, bytecode.OpStoreStatic,
	bytecode.OpLoadLocal, bytecode.OpStoreLocal,
	bytecode.OpLoadElem, bytecode.OpStoreElem,
	bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv, bytecode.OpMod, bytecode.OpNeg,
	bytecode.OpBitAnd, bytecode.OpBitOr, bytecode.OpBitXor, bytecode.OpShl, bytecode.OpShr,
	bytecode.OpNot, bytecode.OpEq, bytecode.OpNe, bytecode.OpLt, bytecode.OpLe, bytecode.OpGt, bytecode.OpGe,
	bytecode.OpJmp, bytecode.OpJz, bytecode.OpJnz,
	bytecode.OpSignal,
	bytecode.OpReturnVoid, bytecode.OpReturnTop, bytecode.OpReturnStatic,
	bytecode.OpHalt,
}

// synthStatics declares the fuzz programs' state: a scalar and two arrays.
// All sizes are ≥ 1 (slot 0 must exist for OpLoadStatic/OpStoreStatic).
var synthStatics = []bytecode.StaticDef{{Size: 1}, {Size: 5}, {Size: 2}}

var synthConsts = []string{"this", "lib", "ev1", "ev2"}

// synthHandler lowers a raw fuzz byte stream into one structurally valid
// handler body: every opcode drawn from the menu, slot/local/const operands
// clamped into range, and jump targets resolved to instruction boundaries
// via assembler labels. The result always passes Program.Verify, so the
// fuzzer spends its budget on execution semantics instead of rejecting
// malformed programs at load.
func synthHandler(data []byte) ([]byte, error) {
	type gen struct {
		op bytecode.Op
		// imm is the decoded immediate / slot / local / argc operand.
		imm int32
		// tgt is the jump-target instruction index (resolved to a label).
		dest, event byte
		tgt         int
	}
	next := func(i *int) byte {
		if *i >= len(data) {
			return 0
		}
		b := data[*i]
		*i++
		return b
	}
	var ins []gen
	const maxIns = 200
	for i := 0; i < len(data) && len(ins) < maxIns; {
		g := gen{op: synthOps[int(next(&i))%len(synthOps)]}
		switch g.op {
		case bytecode.OpPushI8:
			g.imm = int32(int8(next(&i)))
		case bytecode.OpPushI16:
			g.imm = int32(int16(uint16(next(&i))<<8 | uint16(next(&i))))
		case bytecode.OpPushI32:
			g.imm = int32(uint32(next(&i))<<24 | uint32(next(&i))<<16 | uint32(next(&i))<<8 | uint32(next(&i)))
		case bytecode.OpLoadStatic, bytecode.OpStoreStatic, bytecode.OpLoadElem, bytecode.OpStoreElem, bytecode.OpReturnStatic:
			g.imm = int32(next(&i)) % int32(len(synthStatics))
		case bytecode.OpLoadLocal, bytecode.OpStoreLocal:
			g.imm = int32(next(&i)) % bytecode.MaxLocals
		case bytecode.OpSignal:
			g.dest = next(&i) % byte(len(synthConsts))
			g.event = next(&i) % byte(len(synthConsts))
			g.imm = int32(next(&i)) % 4
		case bytecode.OpJmp, bytecode.OpJz, bytecode.OpJnz:
			g.tgt = int(next(&i)) // clamped below once the count is known
		}
		ins = append(ins, g)
	}
	a := bytecode.NewAssembler()
	for idx, g := range ins {
		a.Label(fmt.Sprintf("i%d", idx))
		switch g.op {
		case bytecode.OpPushI8:
			a.Emit(bytecode.OpPushI8, byte(int8(g.imm)))
		case bytecode.OpPushI16:
			a.Emit(bytecode.OpPushI16, byte(uint16(g.imm)>>8), byte(uint16(g.imm)))
		case bytecode.OpPushI32:
			u := uint32(g.imm)
			a.Emit(bytecode.OpPushI32, byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
		case bytecode.OpLoadStatic, bytecode.OpStoreStatic, bytecode.OpLoadElem, bytecode.OpStoreElem, bytecode.OpReturnStatic,
			bytecode.OpLoadLocal, bytecode.OpStoreLocal:
			a.Emit(g.op, byte(g.imm))
		case bytecode.OpSignal:
			a.Signal(g.dest, g.event, byte(g.imm))
		case bytecode.OpJmp, bytecode.OpJz, bytecode.OpJnz:
			a.Jump(g.op, fmt.Sprintf("i%d", g.tgt%(len(ins)+1)))
		default:
			a.Emit(g.op)
		}
	}
	a.Label(fmt.Sprintf("i%d", len(ins)))
	return a.Assemble()
}

// FuzzCompiledVsInterpreter is the differential fuzz target: random
// verified programs and random arguments must produce bit-identical
// RunResult/trap/fuel transcripts (and identical static state) on the
// compiled engine and the reference interpreter.
func FuzzCompiledVsInterpreter(f *testing.F) {
	// Seed with every embedded driver handler body, so the corpus starts
	// on realistic code shapes (incl. the BMP180 compensation math).
	all := append(append([]driver.StandardDriver{}, driver.StandardDrivers...), driver.ExtendedDrivers...)
	for _, sd := range all {
		src, err := driver.Source(sd)
		if err != nil {
			f.Fatal(err)
		}
		prog, err := dsl.Compile(src, uint32(sd.ID))
		if err != nil {
			f.Fatal(err)
		}
		for _, h := range prog.Handlers {
			f.Add(h.Code, int32(512), int32(0), int32(-7))
		}
	}
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, int32(1), int32(2), int32(3))
	f.Add([]byte{30, 0, 31, 1, 15}, int32(0), int32(0), int32(0)) // jump-heavy

	f.Fuzz(func(t *testing.T, body []byte, a0, a1, a2 int32) {
		code, err := synthHandler(body)
		if err != nil {
			t.Skip() // out-of-range branch (assembler refuses); nothing to compare
		}
		ret := []byte{byte(bytecode.OpReturnVoid)}
		prog := &bytecode.Program{
			DeviceID: 1,
			Statics:  synthStatics,
			Imports:  []string{"lib"},
			Consts:   synthConsts,
			Handlers: []bytecode.Handler{
				{Name: "init", Code: ret},
				{Name: "destroy", Code: ret},
				{Name: "h", NParams: 3, Code: code},
			},
		}
		if err := prog.Verify(); err != nil {
			t.Fatalf("synthesized program failed verification (generator bug): %v\n%s",
				err, bytecode.Disassemble(code, synthConsts))
		}
		mc, err := NewMachine(prog)
		if err != nil {
			t.Fatal(err)
		}
		if !mc.Compiled() {
			t.Fatal("verified program did not compile")
		}
		mi, err := NewMachine(prog)
		if err != nil {
			t.Fatal(err)
		}
		mi.SetInterp(true)
		// Bound runaway loops well under the default so fuzz execs stay
		// fast; fuel exhaustion itself is part of the compared transcript.
		mc.Fuel, mi.Fuel = 2000, 2000
		args := []int32{a0, a1, a2}
		// Three runs: statics evolve, so later runs start from mutated
		// state and cover load-after-store paths.
		for pass := 0; pass < 3; pass++ {
			runBoth(t, mc, mi, "h", args)
			args[0], args[1], args[2] = args[1], args[2], args[0]+1
		}
	})
}
