package vm

import (
	"testing"
	"time"

	"micropnp/internal/bytecode"
	"micropnp/internal/dsl"
)

func compile(t testing.TB, src string, id uint32) *bytecode.Program {
	t.Helper()
	p, err := dsl.Compile(src, id)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const arithDriver = `int32_t acc;

event init():
    acc = 0;

event destroy():
    pass;

event compute(int32_t a, int32_t b):
    acc = (a + b) * 2 - a / b + a % b;

event boom(int32_t a):
    acc = a / 0;

event loop():
    while true:
        acc += 1;

event oob():
    pass;
`

func TestMachineArithmetic(t *testing.T) {
	m, err := NewMachine(compile(t, arithDriver, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run("compute", []int32{7, 3}); err != nil {
		t.Fatal(err)
	}
	// (7+3)*2 - 7/3 + 7%3 = 20 - 2 + 1 = 19
	if got := m.Static(0)[0]; got != 19 {
		t.Fatalf("acc = %d, want 19", got)
	}
}

func TestMachineTraps(t *testing.T) {
	m, err := NewMachine(compile(t, arithDriver, 1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run("boom", []int32{5})
	te, ok := err.(*TrapError)
	if !ok || te.Trap != TrapDivByZero {
		t.Fatalf("want divByZero trap, got %v", err)
	}
	_, err = m.Run("loop", nil)
	te, ok = err.(*TrapError)
	if !ok || te.Trap != TrapFuelExhausted {
		t.Fatalf("want fuel trap, got %v", err)
	}
	if te.Error() == "" {
		t.Error("trap must render")
	}
}

func TestMachineMissingHandlerIsDropped(t *testing.T) {
	m, err := NewMachine(compile(t, arithDriver, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run("nonexistent", nil)
	if err != nil || res.Instructions != 0 {
		t.Fatalf("missing handler must be a silent drop, got %v %+v", err, res)
	}
}

func TestMachineIndexTrap(t *testing.T) {
	src := `uint8_t buf[4];

event init():
    pass;

event destroy():
    pass;

event poke(int32_t i):
    buf[i] = 1;
`
	m, err := NewMachine(compile(t, src, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run("poke", []int32{3}); err != nil {
		t.Fatal(err)
	}
	_, err = m.Run("poke", []int32{4})
	if te, ok := err.(*TrapError); !ok || te.Trap != TrapIndexRange {
		t.Fatalf("want index trap, got %v", err)
	}
	_, err = m.Run("poke", []int32{-1})
	if te, ok := err.(*TrapError); !ok || te.Trap != TrapIndexRange {
		t.Fatalf("want index trap for negative, got %v", err)
	}
}

func TestRouterFIFOOrder(t *testing.T) {
	r := NewRouter()
	for i := 0; i < 5; i++ {
		r.Post(Event{Name: "e", Args: []int32{int32(i)}})
	}
	for i := 0; i < 5; i++ {
		e, ok := r.Next()
		if !ok || e.Args[0] != int32(i) {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("router must be empty")
	}
}

func TestRouterErrorsPrioritised(t *testing.T) {
	r := NewRouter()
	r.Post(Event{Name: "regular1"})
	r.Post(Event{Name: "err1", IsError: true})
	r.Post(Event{Name: "regular2"})
	r.Post(Event{Name: "err2", IsError: true})

	var order []string
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		order = append(order, e.Name)
	}
	want := []string{"err1", "err2", "regular1", "regular2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	posted, dispatched := r.Stats()
	if posted != 4 || dispatched != 4 {
		t.Fatalf("stats = %d/%d", posted, dispatched)
	}
}

func TestAVRTimeModel(t *testing.T) {
	m := DefaultAVRTimeModel
	push := m.InstructionCost(1, 0)
	if push < 20*time.Microsecond || push > 30*time.Microsecond {
		t.Errorf("push-ish instruction = %v", push)
	}
	// The average instruction must land near the paper's 39.7 µs: estimate
	// over a representative mix (1 push ops, 2pop+1push ALU ops, stores).
	mix := []struct{ pushes, pops int }{
		{1, 0}, {1, 0}, {0, 1}, {1, 2}, {1, 2}, {1, 2}, {0, 1}, {1, 1},
	}
	var total time.Duration
	for _, op := range mix {
		total += m.InstructionCost(op.pushes, op.pops)
	}
	avg := total / time.Duration(len(mix))
	if avg < 30*time.Microsecond || avg > 50*time.Microsecond {
		t.Errorf("average instruction cost = %v, want ≈39.7 µs", avg)
	}
}

const counterDriver = `int32_t n;

event init():
    n = 0;

event destroy():
    pass;

event bump():
    n++;
    signal this.bumped();

event bumped():
    pass;

event read():
    return n;

error divByZero():
    n = -1;

event boom():
    n = 1 / 0;
`

func TestRuntimeLifecycleAndReturn(t *testing.T) {
	rt, err := NewRuntime(compile(t, counterDriver, 2))
	if err != nil {
		t.Fatal(err)
	}
	var returned [][]int32
	rt.OnReturn(func(v []int32) { returned = append(returned, v) })

	rt.Start()
	rt.Post("bump")
	rt.Post("bump")
	rt.Post("read")
	rt.RunUntilIdle(0)

	if len(returned) != 1 || returned[0][0] != 2 {
		t.Fatalf("returned = %v, want [[2]]", returned)
	}
	if rt.Dispatches == 0 || rt.EmulatedTime == 0 {
		t.Error("runtime must account dispatches and emulated time")
	}
	rt.Stop()
}

func TestRuntimeTrapBecomesErrorEvent(t *testing.T) {
	rt, err := NewRuntime(compile(t, counterDriver, 2))
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	rt.Post("boom")
	rt.RunUntilIdle(0)
	// The divByZero trap must have dispatched the driver's error handler.
	if got := rt.Machine().Static(0)[0]; got != -1 {
		t.Fatalf("n = %d, want -1 (set by divByZero error handler)", got)
	}
	if rt.Traps != 1 {
		t.Errorf("traps = %d", rt.Traps)
	}
}

func TestRuntimeMissingLibrary(t *testing.T) {
	src := `import uart;

event init():
    pass;

event destroy():
    pass;
`
	if _, err := NewRuntime(compile(t, src, 3)); err == nil {
		t.Fatal("missing library must fail")
	}
}

func TestTimerLibrary(t *testing.T) {
	src := `import timer;

int32_t fired;

event init():
    fired = 0;
    signal timer.start(250);

event destroy():
    pass;

event timerFired():
    fired = 1;
`
	rt, err := NewRuntime(compile(t, src, 4), &TimerLib{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	if got := rt.Machine().Static(0)[0]; got != 1 {
		t.Fatalf("fired = %d, want 1", got)
	}
	if rt.Now() < 250*time.Millisecond {
		t.Fatalf("virtual clock = %v, must have advanced past the timer", rt.Now())
	}
}
