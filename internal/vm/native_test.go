package vm

import (
	"testing"
	"time"

	"micropnp/internal/bus"
	"micropnp/internal/dsl"
)

// driverRT compiles src and builds a runtime over the given libraries.
func driverRT(t *testing.T, src string, libs ...Library) *Runtime {
	t.Helper()
	prog, err := dsl.Compile(src, 0x42)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(prog, libs...)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestADCLibFaultOnFloatingInput(t *testing.T) {
	src := `import adc;

int32_t faults;

event init():
    signal adc.read();

event destroy():
    pass;

event sample(uint16_t v):
    pass;

error adcFault():
    faults++;
`
	rt := driverRT(t, src, &ADCLib{ADC: bus.NewADC()}) // nothing connected
	rt.Start()
	if rt.Machine().Static(0)[0] != 1 {
		t.Fatal("floating ADC input must raise adcFault")
	}
}

func TestADCLibDeliversSample(t *testing.T) {
	src := `import adc;

int32_t got;

event init():
    signal adc.read();

event destroy():
    pass;

event sample(uint16_t v):
    got = v;
`
	env := bus.NewEnvironment()
	env.Set(25, 40, 101_325)
	adc := bus.NewADC()
	adc.Connect(&bus.TMP36{Env: env})
	rt := driverRT(t, src, &ADCLib{ADC: adc})
	rt.Start()
	if got := rt.Machine().Static(0)[0]; got < 230 || got > 235 {
		t.Fatalf("sample = %d, want ~232", got)
	}
}

func TestI2CLibNackPaths(t *testing.T) {
	src := `import i2c;

int32_t nacks;

event init():
    # no device at 0x55
    signal i2c.read(0x55, 0x00, 1);
    # malformed: n out of range
    signal i2c.read(0x77, 0x00, 9);
    signal i2c.write(0x55, 0x00, 1, 1);

event destroy():
    pass;

event i2cdata(int32_t value, int32_t n):
    pass;

event i2cack():
    pass;

error i2cNack():
    nacks++;
`
	rt := driverRT(t, src, &I2CLib{Bus: bus.NewI2C()})
	rt.Start()
	if got := rt.Machine().Static(0)[0]; got != 3 {
		t.Fatalf("nacks = %d, want 3", got)
	}
}

func TestI2CLibPacksBigEndian(t *testing.T) {
	src := `import i2c;

int32_t got, count;

event init():
    signal i2c.read(0x77, 0xAA, 2);

event destroy():
    pass;

event i2cdata(int32_t value, int32_t n):
    got = value;
    count = n;
`
	env := bus.NewEnvironment()
	i2c := bus.NewI2C()
	if err := i2c.Attach(bus.NewBMP180(env)); err != nil {
		t.Fatal(err)
	}
	rt := driverRT(t, src, &I2CLib{Bus: i2c})
	rt.Start()
	// Calibration register 0xAA holds AC1 = 408 big-endian.
	if got := rt.Machine().Static(0)[0]; got != 408 {
		t.Fatalf("value = %d, want 408", got)
	}
	if n := rt.Machine().Static(1)[0]; n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
}

func TestSPILibTransferAndFaults(t *testing.T) {
	src := `import spi;

int32_t got, faults;

event init():
    signal spi.transfer(0x0102, 2);
    signal spi.transfer(0x01, 9);

event destroy():
    pass;

event spidata(int32_t value, int32_t n):
    got = value;

error spiFault():
    faults++;
`
	s := bus.NewSPI()
	s.Connect(spiEchoInv{})
	rt := driverRT(t, src, &SPILib{Bus: s})
	rt.Start()
	// Echo-inverted: out [0x01 0x02] -> in [0xFE 0xFD] -> 0xFEFD.
	if got := rt.Machine().Static(0)[0]; got != 0xFEFD {
		t.Fatalf("spidata value = %#x, want 0xFEFD", got)
	}
	if f := rt.Machine().Static(1)[0]; f != 1 {
		t.Fatalf("faults = %d, want 1 (n out of range)", f)
	}

	// Disconnected slave also faults.
	s.Connect(nil)
	rt.Post("init")
	rt.RunUntilIdle(0)
	if f := rt.Machine().Static(1)[0]; f < 2 {
		t.Fatalf("faults = %d, want >= 2 after disconnect", f)
	}
}

type spiEchoInv struct{}

func (spiEchoInv) Transfer(out []byte) []byte {
	in := make([]byte, len(out))
	for i, b := range out {
		in[i] = ^b
	}
	return in
}

func TestExternalSchedulerDrivesTimers(t *testing.T) {
	src := `import timer;

int32_t fired;

event init():
    signal timer.start(100);

event destroy():
    pass;

event timerFired():
    fired++;
`
	sched := &fakeScheduler{}
	prog, err := dsl.Compile(src, 7)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(prog, &TimerLib{})
	if err != nil {
		t.Fatal(err)
	}
	rt.SetScheduler(sched)
	rt.Start()

	if rt.Machine().Static(0)[0] != 0 {
		t.Fatal("timer must not fire before the external clock advances")
	}
	if len(sched.entries) != 1 || sched.entries[0].at != 100*time.Millisecond {
		t.Fatalf("scheduled = %+v", sched.entries)
	}
	sched.advanceAll()
	if rt.Machine().Static(0)[0] != 1 {
		t.Fatal("timer must fire when the external clock reaches it")
	}
	if rt.Now() != 100*time.Millisecond {
		t.Fatalf("Now() = %v, must follow the external clock", rt.Now())
	}
}

type fakeScheduler struct {
	now     time.Duration
	entries []fakeEntry
}

type fakeEntry struct {
	at time.Duration
	fn func()
}

func (s *fakeScheduler) Now() time.Duration { return s.now }
func (s *fakeScheduler) Schedule(d time.Duration, fn func()) {
	s.entries = append(s.entries, fakeEntry{at: s.now + d, fn: fn})
}

func (s *fakeScheduler) advanceAll() {
	for len(s.entries) > 0 {
		e := s.entries[0]
		s.entries = s.entries[1:]
		if e.at > s.now {
			s.now = e.at
		}
		e.fn()
	}
}

func TestUARTWriteAndWriteDone(t *testing.T) {
	src := `import uart;

int32_t done;

event init():
    signal uart.init(9600, USART_PARITY_NONE, USART_STOP_BITS_1, USART_DATA_BITS_8);
    signal uart.write(0x41);

event destroy():
    signal uart.reset();

event writeDone():
    done++;
`
	port := bus.NewUART()
	var devGot []byte
	port.OnDeviceReceive(func(b byte) { devGot = append(devGot, b) })
	rt := driverRT(t, src, &UARTLib{Port: port})
	rt.Start()
	if rt.Machine().Static(0)[0] != 1 {
		t.Fatal("writeDone must fire")
	}
	if len(devGot) != 1 || devGot[0] != 0x41 {
		t.Fatalf("device received % x", devGot)
	}
}

func TestLibrariesFor(t *testing.T) {
	libs := LibrariesFor(bus.NewUART(), bus.NewADC(), bus.NewI2C(), bus.NewSPI())
	if len(libs) != 5 { // 4 buses + timer
		t.Fatalf("libs = %d", len(libs))
	}
	names := map[string]bool{}
	for _, l := range libs {
		names[l.Name()] = true
	}
	for _, want := range []string{"uart", "adc", "i2c", "spi", "timer"} {
		if !names[want] {
			t.Errorf("missing library %q", want)
		}
	}
	if got := LibrariesFor(nil, nil, nil, nil); len(got) != 1 {
		t.Fatalf("nil buses must yield only the timer, got %d", len(got))
	}
}
