package vm

import (
	"fmt"
	"path"
	"strings"
	"testing"

	"micropnp/internal/driver"
	"micropnp/internal/dsl"
)

// benchCall is one handler invocation in a driver's steady-state sample
// cycle.
type benchCall struct {
	name string
	args []int32
}

// driverCycles maps each embedded driver to its realistic per-sample
// handler sequence (the peripheral-event choreography a live Thing would
// replay per reading). BMP180 is the full two-conversion compensation
// cycle; ID-20LA replays a complete 16-byte RFID frame.
func driverCycles() map[string][]benchCall {
	rfid := []byte{0x02, '4', '2', '0', '0', '7', 'A', '8', 'C', '2', '1', 'F', '5', 0x0D, 0x0A, 0x03}
	id20 := []benchCall{{name: "read"}}
	for _, c := range rfid {
		id20 = append(id20, benchCall{name: "newdata", args: []int32{int32(c)}})
	}
	id20 = append(id20, benchCall{name: "readDone"})

	return map[string][]benchCall{
		"tmp36":   {{name: "read"}, {name: "sample", args: []int32{512}}},
		"hih4030": {{name: "read"}, {name: "sample", args: []int32{700}}},
		"id20la":  id20,
		"bmp180": {
			{name: "read"},
			{name: "i2cack"},
			{name: "timerFired"},
			{name: "i2cdata", args: []int32{27898, 0}}, // UT
			{name: "i2cack"},
			{name: "timerFired"},
			{name: "i2cdata", args: []int32{23843 << 7, 0}}, // UP (3-byte wire value, >>7 at oss=1)
			{name: "compute"},
		},
		"adxl345": {
			{name: "read"},
			{name: "spidata", args: []int32{120, 0}},
			{name: "spidata", args: []int32{-40, 1}},
			{name: "spidata", args: []int32{250, 2}},
		},
		"relay": {
			{name: "write", args: []int32{1}},
			{name: "read"},
			{name: "i2cdata", args: []int32{1, 0}},
		},
	}
}

// BenchmarkDriverExec pairs the compiled engine against the interpreter
// oracle on every embedded driver's sample cycle. benchgate -speedup
// -pair driver=compiled,driver=interp gates the geomean ratio in CI.
//
// The driver loop is OUTER and the engine loop INNER so `go test -count N`
// runs each compiled sub-benchmark immediately before its interp twin:
// slow machine-state drift over a multi-minute run (turbo, noisy CI
// neighbors) then hits both halves of a pair about equally and cancels in
// the ratio, instead of deflating every ratio when the run starts slow and
// ends fast.
func BenchmarkDriverExec(b *testing.B) {
	cycles := driverCycles()
	all := append(append([]driver.StandardDriver{}, driver.StandardDrivers...), driver.ExtendedDrivers...)
	for _, sd := range all {
		for _, engine := range []string{"compiled", "interp"} {
			short := strings.TrimSuffix(path.Base(sd.File), ".updsl")
			cycle, ok := cycles[short]
			if !ok {
				b.Fatalf("no bench cycle for embedded driver %q", short)
			}
			b.Run(fmt.Sprintf("driver=%s/drv=%s", engine, short), func(b *testing.B) {
				src, err := driver.Source(sd)
				if err != nil {
					b.Fatal(err)
				}
				prog, err := dsl.Compile(src, uint32(sd.ID))
				if err != nil {
					b.Fatal(err)
				}
				m, err := NewMachine(prog)
				if err != nil {
					b.Fatal(err)
				}
				if engine == "interp" {
					m.SetInterp(true)
				} else if !m.Compiled() {
					b.Fatal("embedded driver did not compile")
				}
				// One-time install prologue outside the measured loop. For
				// BMP180 this replays the 11-word calibration read so the
				// compensation math in the cycle runs on real coefficients.
				runOrTrap(b, m, "init", nil)
				if short == "bmp180" {
					cal := []int32{408, -72, -14383, 32741, 32757, 23153, 6190, 4, -32768, -8711, 2868}
					for i, w := range cal {
						runOrTrap(b, m, "i2cdata", []int32{w, int32(i)})
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, c := range cycle {
						if _, err := m.Run(c.name, c.args); err != nil {
							b.Fatalf("%s: %v", c.name, err)
						}
					}
				}
			})
		}
	}
}

func runOrTrap(b *testing.B, m *Machine, name string, args []int32) {
	b.Helper()
	if _, err := m.Run(name, args); err != nil {
		b.Fatalf("%s: %v", name, err)
	}
}
