package vm

import (
	"time"

	"micropnp/internal/bus"
)

// Native interconnect libraries (Figure 8): thin, platform-specific adapters
// between driver bytecode and the simulated hardware interconnects. Each
// library delivers results asynchronously by posting events, preserving the
// split-phase I/O model of the DSL.

// ---------------------------------------------------------------------------
// uart

// UARTLib exposes a bus.UART to drivers:
//
//	signal uart.init(baud, parity, stop, bits) — errors: invalidConfiguration, uartInUse
//	signal uart.reset()
//	signal uart.read()   — subsequent bytes arrive as newdata(char) events;
//	                       a read with no data within ReadTimeout raises timeOut
//	signal uart.write(b) — writeDone() on completion
type UARTLib struct {
	Port *bus.UART
	// ReadTimeout is the virtual-time window for the timeOut error
	// (default 500 ms).
	ReadTimeout time.Duration

	rt      *Runtime
	armed   bool
	dataSeq int           // increments on every delivered byte
	lastRx  time.Duration // virtual time the previous byte finished arriving
}

// Name implements Library.
func (l *UARTLib) Name() string { return "uart" }

// Attach implements Library.
func (l *UARTLib) Attach(rt *Runtime) {
	l.rt = rt
	if l.ReadTimeout == 0 {
		l.ReadTimeout = 500 * time.Millisecond
	}
	l.Port.OnReceive(func(b byte) {
		// Bytes arrive paced by the line rate: at 9600 8N1 a frame takes
		// ~1.04 ms on the wire. Delivering bytes at their real arrival
		// times matters for driver semantics — handlers drain the event
		// queue between bytes, exactly as on the physical UART.
		cfg, _ := l.Port.Config()
		frameBits := 1 + cfg.DataBits + cfg.StopBits
		if cfg.Parity != bus.ParityNone {
			frameBits++
		}
		byteTime := time.Duration(float64(frameBits) / float64(cfg.Baud) * float64(time.Second))
		at := l.rt.Now() + byteTime
		if at < l.lastRx+byteTime {
			at = l.lastRx + byteTime
		}
		l.lastRx = at
		l.rt.Schedule(at-l.rt.Now(), func() {
			l.dataSeq++
			if l.armed {
				l.rt.Post("newdata", int32(b))
			}
		})
	})
}

// Detach implements Library.
func (l *UARTLib) Detach() {
	l.armed = false
	l.Port.Reset()
}

// Invoke implements Library.
func (l *UARTLib) Invoke(op string, args []int32) {
	switch op {
	case "init":
		if len(args) != 4 {
			l.rt.PostError("invalidConfiguration")
			return
		}
		if _, open := l.Port.Config(); open {
			l.rt.PostError("uartInUse")
			return
		}
		cfg := bus.UARTConfig{
			Baud:     int(args[0]),
			Parity:   bus.Parity(args[1]),
			StopBits: int(args[2]),
			DataBits: int(args[3]),
		}
		if err := l.Port.Init(cfg); err != nil {
			l.rt.PostError("invalidConfiguration")
		}
	case "reset":
		l.armed = false
		l.Port.Reset()
	case "read":
		l.armed = true
		seq := l.dataSeq
		l.rt.Schedule(l.ReadTimeout, func() {
			if l.armed && l.dataSeq == seq {
				l.armed = false
				l.rt.PostError("timeOut")
			}
		})
	case "write":
		if len(args) != 1 {
			l.rt.PostError("invalidConfiguration")
			return
		}
		if err := l.Port.Write([]byte{byte(args[0])}); err != nil {
			l.rt.PostError("invalidConfiguration")
			return
		}
		l.rt.Post("writeDone")
	default:
		l.rt.PostError("badBytecode")
	}
}

// ---------------------------------------------------------------------------
// adc

// ADCLib exposes a bus.ADC channel:
//
//	signal adc.read() — result arrives as sample(value); faults as adcFault.
type ADCLib struct {
	ADC *bus.ADC
	rt  *Runtime
}

// Name implements Library.
func (l *ADCLib) Name() string { return "adc" }

// Attach implements Library.
func (l *ADCLib) Attach(rt *Runtime) { l.rt = rt }

// Detach implements Library.
func (l *ADCLib) Detach() {}

// Invoke implements Library.
func (l *ADCLib) Invoke(op string, args []int32) {
	switch op {
	case "read":
		v, err := l.ADC.Sample()
		if err != nil {
			l.rt.PostError("adcFault")
			return
		}
		l.rt.Post("sample", int32(v))
	default:
		l.rt.PostError("badBytecode")
	}
}

// ---------------------------------------------------------------------------
// i2c

// I2CLib exposes a bus.I2C master:
//
//	signal i2c.read(addr, reg, n)         — n ≤ 4; result i2cdata(value, n),
//	                                        value big-endian packed
//	signal i2c.write(addr, reg, value, n) — ack as i2cack()
//
// Address NACKs and malformed requests raise i2cNack.
type I2CLib struct {
	Bus *bus.I2C
	rt  *Runtime
}

// Name implements Library.
func (l *I2CLib) Name() string { return "i2c" }

// Attach implements Library.
func (l *I2CLib) Attach(rt *Runtime) { l.rt = rt }

// Detach implements Library.
func (l *I2CLib) Detach() {}

// Invoke implements Library.
func (l *I2CLib) Invoke(op string, args []int32) {
	switch op {
	case "read":
		if len(args) != 3 || args[2] < 1 || args[2] > 4 {
			l.rt.PostError("i2cNack")
			return
		}
		data, err := l.Bus.Read(byte(args[0]), byte(args[1]), int(args[2]))
		if err != nil {
			l.rt.PostError("i2cNack")
			return
		}
		var v int32
		for _, b := range data {
			v = v<<8 | int32(b)
		}
		l.rt.Post("i2cdata", v, args[2])
	case "write":
		if len(args) != 4 || args[3] < 1 || args[3] > 4 {
			l.rt.PostError("i2cNack")
			return
		}
		n := int(args[3])
		data := make([]byte, n)
		for i := n - 1; i >= 0; i-- {
			data[i] = byte(args[2] >> (8 * (n - 1 - i)))
		}
		if err := l.Bus.Write(byte(args[0]), byte(args[1]), data); err != nil {
			l.rt.PostError("i2cNack")
			return
		}
		l.rt.Post("i2cack")
	default:
		l.rt.PostError("badBytecode")
	}
}

// ---------------------------------------------------------------------------
// spi

// SPILib exposes a bus.SPI master:
//
//	signal spi.transfer(value, n) — n ≤ 4 bytes exchanged; reply spidata(value, n).
type SPILib struct {
	Bus *bus.SPI
	rt  *Runtime
}

// Name implements Library.
func (l *SPILib) Name() string { return "spi" }

// Attach implements Library.
func (l *SPILib) Attach(rt *Runtime) { l.rt = rt }

// Detach implements Library.
func (l *SPILib) Detach() {}

// Invoke implements Library.
func (l *SPILib) Invoke(op string, args []int32) {
	switch op {
	case "transfer":
		if len(args) != 2 || args[1] < 1 || args[1] > 4 {
			l.rt.PostError("spiFault")
			return
		}
		n := int(args[1])
		out := make([]byte, n)
		for i := n - 1; i >= 0; i-- {
			out[i] = byte(args[0] >> (8 * (n - 1 - i)))
		}
		in, err := l.Bus.Transfer(out)
		if err != nil {
			l.rt.PostError("spiFault")
			return
		}
		var v int32
		for _, b := range in {
			v = v<<8 | int32(b)
		}
		l.rt.Post("spidata", v, args[1])
	default:
		l.rt.PostError("badBytecode")
	}
}

// ---------------------------------------------------------------------------
// timer

// TimerLib provides split-phase delays under the runtime's virtual clock:
//
//	signal timer.start(ms) — timerFired() after ms milliseconds.
type TimerLib struct {
	rt *Runtime
}

// Name implements Library.
func (l *TimerLib) Name() string { return "timer" }

// Attach implements Library.
func (l *TimerLib) Attach(rt *Runtime) { l.rt = rt }

// Detach implements Library.
func (l *TimerLib) Detach() {}

// Invoke implements Library.
func (l *TimerLib) Invoke(op string, args []int32) {
	switch op {
	case "start":
		if len(args) != 1 || args[0] < 0 {
			l.rt.PostError("badBytecode")
			return
		}
		rt := l.rt
		rt.Schedule(time.Duration(args[0])*time.Millisecond, func() {
			rt.Post("timerFired")
		})
	default:
		l.rt.PostError("badBytecode")
	}
}

// LibrariesFor builds the standard library set for a peripheral slot wired
// to the given interconnects. Nil interconnects are skipped — supply only
// what the channel provides.
func LibrariesFor(u *bus.UART, a *bus.ADC, i *bus.I2C, s *bus.SPI) []Library {
	var libs []Library
	if u != nil {
		libs = append(libs, &UARTLib{Port: u})
	}
	if a != nil {
		libs = append(libs, &ADCLib{ADC: a})
	}
	if i != nil {
		libs = append(libs, &I2CLib{Bus: i})
	}
	if s != nil {
		libs = append(libs, &SPILib{Bus: s})
	}
	libs = append(libs, &TimerLib{})
	return libs
}
