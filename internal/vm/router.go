// Package vm implements the µPnP execution environment of Section 4.2: a
// stack-based virtual machine interpreting driver bytecode, an event router
// with a FIFO queue for regular events and a priority queue for errors, and
// the native interconnect libraries (adc, uart, i2c, spi, timer) that expose
// platform I/O to platform-independent drivers.
package vm

import (
	"sync"
	"time"
)

// Event is a message exchanged between drivers, native libraries and the
// network stack. All I/O in µPnP is modelled as events.
type Event struct {
	// Name selects the driver handler (or library operation) to run.
	Name string
	// Args are the event payload values.
	Args []int32
	// IsError routes the event through the priority queue and dispatches it
	// to an error handler.
	IsError bool
	// Source identifies the originator (diagnostic).
	Source string
}

// Router implements the two event queues of the execution environment:
// regular events are handled first-come first-served, error events are
// prioritised. Posting never blocks; control returns immediately to the
// originator (Section 4.2).
type Router struct {
	mu     sync.Mutex
	fifo   []Event
	errors []Event

	// stats
	posted     int
	dispatched int
}

// NewRouter returns an empty router.
func NewRouter() *Router { return &Router{} }

// Post enqueues an event on the appropriate queue.
func (r *Router) Post(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.posted++
	if e.IsError {
		r.errors = append(r.errors, e)
	} else {
		r.fifo = append(r.fifo, e)
	}
}

// Next dequeues the next event to dispatch: all pending errors drain before
// any regular event.
func (r *Router) Next() (Event, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.errors) > 0 {
		e := r.errors[0]
		r.errors = r.errors[1:]
		r.dispatched++
		return e, true
	}
	if len(r.fifo) > 0 {
		e := r.fifo[0]
		r.fifo = r.fifo[1:]
		r.dispatched++
		return e, true
	}
	return Event{}, false
}

// Len returns the number of queued events.
func (r *Router) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.fifo) + len(r.errors)
}

// Stats returns lifetime posted/dispatched counters.
func (r *Router) Stats() (posted, dispatched int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.posted, r.dispatched
}

// AVRTimeModel emulates the measured execution costs of the prototype on the
// 16 MHz ATMega128RFA1 (Section 6.2): a push() costs 11.1 µs, a pop()
// 8.9 µs, the remainder of instruction decode/dispatch is the base cost, and
// routing one event through the queues costs 77.79 µs. With this model the
// average bytecode instruction lands at ≈39.7 µs, matching the paper.
type AVRTimeModel struct {
	Base     time.Duration
	PushCost time.Duration
	PopCost  time.Duration
	Dispatch time.Duration
}

// DefaultAVRTimeModel reproduces the Section 6.2 measurements.
var DefaultAVRTimeModel = AVRTimeModel{
	Base:     12 * time.Microsecond,
	PushCost: 11100 * time.Nanosecond,
	PopCost:  8900 * time.Nanosecond,
	Dispatch: 77790 * time.Nanosecond,
}

// InstructionCost returns the emulated cost of one instruction given how
// many stack pushes and pops it performs.
func (m AVRTimeModel) InstructionCost(pushes, pops int) time.Duration {
	return m.Base + time.Duration(pushes)*m.PushCost + time.Duration(pops)*m.PopCost
}
