// Package vm implements the µPnP execution environment of Section 4.2: a
// stack-based virtual machine interpreting driver bytecode, an event router
// with a FIFO queue for regular events and a priority queue for errors, and
// the native interconnect libraries (adc, uart, i2c, spi, timer) that expose
// platform I/O to platform-independent drivers.
package vm

import (
	"sync"
	"time"
)

// Event is a message exchanged between drivers, native libraries and the
// network stack. All I/O in µPnP is modelled as events.
type Event struct {
	// Name selects the driver handler (or library operation) to run.
	Name string
	// Args are the event payload values.
	Args []int32
	// argv/argn hold small payloads (≤2 values) inline: Runtime.Post packs
	// values here instead of allocating an Args slice, and the queue's
	// by-value copies carry the array along. payload() resolves whichever
	// form is set — always call it on the dequeued copy, never retain the
	// result past the dispatch.
	argv [2]int32
	argn int8
	// IsError routes the event through the priority queue and dispatches it
	// to an error handler.
	IsError bool
	// Source identifies the originator (diagnostic).
	Source string
}

// payload returns the event's argument values, whichever way they are
// stored. The slice may alias the event's inline array: it is valid only for
// the duration of the dispatch that dequeued the event.
func (e *Event) payload() []int32 {
	if e.Args != nil {
		return e.Args
	}
	if e.argn == 0 {
		return nil
	}
	return e.argv[:e.argn]
}

// packArgs stores args in the event: inline when they fit (keeping the
// caller's variadic slice on its stack), as an owned copy otherwise.
func (e *Event) packArgs(args []int32) {
	if len(args) <= len(e.argv) {
		e.argn = int8(copy(e.argv[:], args))
		return
	}
	e.Args = append([]int32(nil), args...)
}

// evQueue is a FIFO over a reusable backing array: popping advances a head
// index instead of re-slicing, and a drained queue rewinds to reuse its
// array — steady-state post/dispatch cycles allocate nothing (the former
// `q = q[1:]` pop abandoned the backing array's front, so every append
// eventually grew a fresh one).
type evQueue struct {
	buf  []Event
	head int
}

func (q *evQueue) push(e Event) { q.buf = append(q.buf, e) }

func (q *evQueue) len() int { return len(q.buf) - q.head }

func (q *evQueue) pop() Event {
	e := q.buf[q.head]
	q.buf[q.head] = Event{} // release Args/Name references
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return e
}

// Router implements the two event queues of the execution environment:
// regular events are handled first-come first-served, error events are
// prioritised. Posting never blocks; control returns immediately to the
// originator (Section 4.2).
type Router struct {
	mu     sync.Mutex
	fifo   evQueue
	errors evQueue

	// stats
	posted     int
	dispatched int
}

// NewRouter returns an empty router.
func NewRouter() *Router { return &Router{} }

// Post enqueues an event on the appropriate queue.
func (r *Router) Post(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.posted++
	if e.IsError {
		r.errors.push(e)
	} else {
		r.fifo.push(e)
	}
}

// Next dequeues the next event to dispatch: all pending errors drain before
// any regular event.
func (r *Router) Next() (Event, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.errors.len() > 0 {
		r.dispatched++
		return r.errors.pop(), true
	}
	if r.fifo.len() > 0 {
		r.dispatched++
		return r.fifo.pop(), true
	}
	return Event{}, false
}

// Len returns the number of queued events.
func (r *Router) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fifo.len() + r.errors.len()
}

// Stats returns lifetime posted/dispatched counters.
func (r *Router) Stats() (posted, dispatched int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.posted, r.dispatched
}

// AVRTimeModel emulates the measured execution costs of the prototype on the
// 16 MHz ATMega128RFA1 (Section 6.2): a push() costs 11.1 µs, a pop()
// 8.9 µs, the remainder of instruction decode/dispatch is the base cost, and
// routing one event through the queues costs 77.79 µs. With this model the
// average bytecode instruction lands at ≈39.7 µs, matching the paper.
type AVRTimeModel struct {
	Base     time.Duration
	PushCost time.Duration
	PopCost  time.Duration
	Dispatch time.Duration
}

// DefaultAVRTimeModel reproduces the Section 6.2 measurements.
var DefaultAVRTimeModel = AVRTimeModel{
	Base:     12 * time.Microsecond,
	PushCost: 11100 * time.Nanosecond,
	PopCost:  8900 * time.Nanosecond,
	Dispatch: 77790 * time.Nanosecond,
}

// InstructionCost returns the emulated cost of one instruction given how
// many stack pushes and pops it performs.
func (m AVRTimeModel) InstructionCost(pushes, pops int) time.Duration {
	return m.Base + time.Duration(pushes)*m.PushCost + time.Duration(pops)*m.PopCost
}
