package vm

import (
	"time"

	"micropnp/internal/bytecode"
)

// Install-time compilation of driver bytecode (the "compiled driver plane").
//
// NewMachine pre-decodes every handler into a direct-threaded instruction
// array, partitions it into straight-line basic blocks, and executes blocks
// with batched accounting (runCompiled): one fuel check, one stack-bounds
// check and one cost addition per block instead of per instruction, with an
// unchecked opcode dispatch inside the block. The measured alternative —
// one fused Go closure per instruction — was rejected: the per-instruction
// indirect call defeats inlining and benched ~1.4x over the interpreter,
// while block batching also removes the per-instruction fuel/bounds/cost
// accounting from the hot path.
//
// The batched accounting is exact, not approximate. A block's fuel demand
// and min/max stack excursion are computed at compile time, so the block
// precheck passes if and only if every per-instruction check inside the
// block would pass; when it fails, execution falls back to the
// per-instruction checked loop (runCompiledChecked), which traps at the
// same PC after the same instruction count as the interpreter. Traps that
// fire mid-block on the fast path (div-by-zero, index range) rebuild the
// exact partial instruction count and emulated time from the block's cost
// prefix before returning.
//
// The interpreter (runInterp) stays as the reference oracle: compiled
// execution is bit-identical — same trap kind at the same byte PC after the
// same instruction count, same Signal order, same EmulatedTime under the
// AVR cost model, and the same scratch-backed zero-alloc RunResult contract
// — so virtual-mode determinism is engine-independent. Differential tests,
// the trap-parity table and FuzzCompiledVsInterpreter enforce this.

// cinstr is one pre-decoded instruction. Operands are fully resolved at
// compile time: immediates sign-extended, jump offsets turned into basic
// block indices, signal constants resolved to their pool strings.
type cinstr struct {
	op bytecode.Op
	// a is the primary decoded operand: the immediate for pushes, the
	// static/local slot, the target block index for jumps, or the signal
	// argc.
	a int32
	// dest and event are the resolved signal strings.
	dest, event string
	// pushes/pops drive the stack bounds checks and the cost model,
	// mirroring stackEffect exactly.
	pushes, pops int8
	// pc is the original bytecode offset, kept so TrapError reports the
	// same PC as the interpreter.
	pc int32
	// cost is InstructionCost(pushes, pops) under the machine's cached
	// cost model (recosted when Machine.Time is reassigned).
	cost time.Duration
}

// cblock is one straight-line basic block: instructions [start, end], with
// control transfers only at end. The precomputed aggregates make one
// precheck equivalent to the conjunction of every member instruction's
// fuel and stack checks.
type cblock struct {
	start, end int32
	// n is the instruction count (fuel demand) of the block.
	n int32
	// minNet is the minimum, over member instructions, of the net stack
	// depth relative to block entry just after that instruction's pops
	// (≤ 0); entry sp + minNet ≥ 0 ⇔ no member underflows. Dup counts as
	// pops=1/pushes=2 here so its read of the current top is covered.
	minNet int32
	// maxPeak is the maximum depth relative to entry reached by any
	// member's pushes; entry sp + maxPeak ≤ MaxStack ⇔ no member
	// overflows.
	maxPeak int32
	// cost is the sum of member instruction costs.
	cost time.Duration
}

// compiledHandler is one handler lowered to the block-threaded form.
type compiledHandler struct {
	name    string
	nparams int
	ins     []cinstr
	blocks  []cblock
}

// compileProgram lowers every handler of a verified program. It returns
// (nil, false) when any instruction is outside the supported set — callers
// fall back to the interpreter, which is the behaviour-defining engine for
// whatever future opcode the compiler does not know.
func compileProgram(prog *bytecode.Program) ([]*compiledHandler, bool) {
	out := make([]*compiledHandler, 0, len(prog.Handlers))
	for i := range prog.Handlers {
		h := &prog.Handlers[i]
		ch, ok := compileHandler(prog, h)
		if !ok {
			return nil, false
		}
		out = append(out, ch)
	}
	return out, true
}

func compileHandler(prog *bytecode.Program, h *bytecode.Handler) (*compiledHandler, bool) {
	code := h.Code
	// First pass: instruction index per byte offset, for jump resolution.
	idxAt := make([]int32, len(code)+1)
	n := int32(0)
	for pc := 0; pc < len(code); {
		op := bytecode.Op(code[pc])
		w := op.OperandWidth()
		if w < 0 || pc+1+w > len(code) {
			return nil, false
		}
		idxAt[pc] = n
		n++
		pc += 1 + w
	}
	idxAt[len(code)] = n

	// Second pass: decode. Jump targets hold instruction indices until the
	// blocks exist.
	ins := make([]cinstr, 0, n)
	for pc := 0; pc < len(code); {
		op := bytecode.Op(code[pc])
		w := op.OperandWidth()
		operand := code[pc+1 : pc+1+w]
		next := pc + 1 + w
		in := cinstr{op: op, pc: int32(pc)}
		pushes, pops := stackEffect(op, operand)
		in.pushes, in.pops = int8(pushes), int8(pops)

		switch op {
		case bytecode.OpNop, bytecode.OpDup, bytecode.OpDrop,
			bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv, bytecode.OpMod,
			bytecode.OpBitAnd, bytecode.OpBitOr, bytecode.OpBitXor, bytecode.OpShl, bytecode.OpShr,
			bytecode.OpEq, bytecode.OpNe, bytecode.OpLt, bytecode.OpLe, bytecode.OpGt, bytecode.OpGe,
			bytecode.OpNeg, bytecode.OpNot,
			bytecode.OpReturnVoid, bytecode.OpReturnTop, bytecode.OpHalt:
		case bytecode.OpPushI8:
			in.a = int32(int8(operand[0]))
		case bytecode.OpPushI16:
			in.a = int32(int16(uint16(operand[0])<<8 | uint16(operand[1])))
		case bytecode.OpPushI32:
			in.a = int32(uint32(operand[0])<<24 | uint32(operand[1])<<16 | uint32(operand[2])<<8 | uint32(operand[3]))
		case bytecode.OpLoadStatic, bytecode.OpStoreStatic,
			bytecode.OpLoadElem, bytecode.OpStoreElem, bytecode.OpReturnStatic:
			if int(operand[0]) >= len(prog.Statics) {
				return nil, false
			}
			in.a = int32(operand[0])
		case bytecode.OpLoadLocal, bytecode.OpStoreLocal:
			if int(operand[0]) >= bytecode.MaxLocals {
				return nil, false
			}
			in.a = int32(operand[0])
		case bytecode.OpJmp, bytecode.OpJz, bytecode.OpJnz:
			target := next + int(int16(uint16(operand[0])<<8|uint16(operand[1])))
			if target < 0 || target > len(code) {
				return nil, false
			}
			in.a = idxAt[target]
		case bytecode.OpSignal:
			if int(operand[0]) >= len(prog.Consts) || int(operand[1]) >= len(prog.Consts) {
				return nil, false
			}
			in.dest = prog.Consts[operand[0]]
			in.event = prog.Consts[operand[1]]
			in.a = int32(operand[2])
		default:
			return nil, false
		}
		ins = append(ins, in)
		pc = next
	}

	// Third pass: block leaders — entry, every jump target, and every
	// instruction following a control transfer.
	leader := make([]bool, n+1)
	leader[0] = true
	for idx := range ins {
		switch ins[idx].op {
		case bytecode.OpJmp, bytecode.OpJz, bytecode.OpJnz:
			leader[ins[idx].a] = true
			leader[idx+1] = true
		case bytecode.OpReturnVoid, bytecode.OpReturnTop, bytecode.OpReturnStatic, bytecode.OpHalt:
			leader[idx+1] = true
		}
	}

	// Fourth pass: build blocks and aggregate fuel/stack demands.
	blockAt := make([]int32, n+1)
	var blocks []cblock
	for i := int32(0); i < n; {
		j := i + 1
		for j < n && !leader[j] {
			j++
		}
		blockAt[i] = int32(len(blocks))
		b := cblock{start: i, end: j - 1, n: j - i}
		d := int32(0)
		for k := i; k < j; k++ {
			in := &ins[k]
			ep, eh := int32(in.pops), int32(in.pushes)
			if in.op == bytecode.OpDup {
				ep, eh = 1, 2 // cover the read of the current top
			}
			if d-ep < b.minNet {
				b.minNet = d - ep
			}
			if d-ep+eh > b.maxPeak {
				b.maxPeak = d - ep + eh
			}
			d += int32(in.pushes) - int32(in.pops)
		}
		blocks = append(blocks, b)
		i = j
	}
	blockAt[n] = int32(len(blocks))

	// Fifth pass: rewrite jump targets from instruction to block indices
	// (targets are always leaders; end-of-code maps past the last block).
	for idx := range ins {
		switch ins[idx].op {
		case bytecode.OpJmp, bytecode.OpJz, bytecode.OpJnz:
			ins[idx].a = blockAt[ins[idx].a]
		}
	}
	return &compiledHandler{name: h.Name, nparams: int(h.NParams), ins: ins, blocks: blocks}, true
}

// recost recomputes every pre-computed instruction and block cost under the
// machine's current time model. Called lazily from Run when Machine.Time
// was reassigned after compilation, so mutating the model stays
// bit-identical to the interpreter's per-instruction InstructionCost calls.
func (m *Machine) recost() {
	for _, ch := range m.compiled {
		for i := range ch.ins {
			in := &ch.ins[i]
			in.cost = m.Time.InstructionCost(int(in.pushes), int(in.pops))
		}
		for i := range ch.blocks {
			b := &ch.blocks[i]
			b.cost = 0
			for k := b.start; k <= b.end; k++ {
				b.cost += ch.ins[k].cost
			}
		}
	}
	m.costModel = m.Time
}

// blockTrapAt rebuilds the exact partial transcript for a trap at
// instruction k inside a block whose fuel/cost accounting was bulk-applied
// at entry, then returns the TrapError. Cold path.
func blockTrapAt(ch *compiledHandler, b *cblock, k int, entrySteps int, entryEtime time.Duration, res *RunResult, kind Trap) error {
	res.Instructions = entrySteps + (k - int(b.start)) + 1
	for j := int(b.start); j <= k; j++ {
		entryEtime += ch.ins[j].cost
	}
	res.EmulatedTime = entryEtime
	return &TrapError{Trap: kind, Handler: ch.name, PC: int(ch.ins[k].pc)}
}

// runCompiled executes one pre-decoded handler. Every observable — trap
// kind/PC, instruction count, emulated time, signal order, the
// scratch-backed result slices — matches runInterp bit for bit.
func (m *Machine) runCompiled(ch *compiledHandler, args []int32, res *RunResult) error {
	var locals [bytecode.MaxLocals]int32
	for i, a := range args {
		if i >= ch.nparams || i >= len(locals) {
			break
		}
		locals[i] = a
	}
	res.Signals = m.sigScratch[:0]
	m.argOff = 0 // previous run's Signal.Args expire with its Signals
	maxStack := m.MaxStack
	if cap(m.scratch) < maxStack {
		m.scratch = make([]int32, 0, maxStack)
	}
	// sp-indexed full-length stack: indexing into a fixed-length slice is
	// cheaper than append/reslice bookkeeping on every push and pop.
	stack := m.scratch[:maxStack]
	sp := 0
	fuel := m.Fuel
	statics := m.statics
	ins := ch.ins
	blocks := ch.blocks
	steps := 0
	var etime time.Duration

	for bi := 0; bi < len(blocks); {
		b := &blocks[bi]
		// Block precheck: equivalent to every member instruction's fuel
		// and stack checks. On failure some member is guaranteed to trap —
		// fall back to the per-instruction loop to trap exactly.
		if steps+int(b.n) > fuel || sp+int(b.minNet) < 0 || sp+int(b.maxPeak) > maxStack {
			return m.runCompiledChecked(ch, bi, sp, &locals, steps, etime, res)
		}
		entrySteps, entryEtime := steps, etime
		steps += int(b.n)
		etime += b.cost
		next := bi + 1
		// Hoisted bounds: b.end would otherwise be reloaded per iteration
		// because the in-loop static/stack stores may alias it.
		end := int(b.end)
		for k := int(b.start); k <= end; k++ {
			in := &ins[k]
			switch in.op {
			case bytecode.OpNop:

			case bytecode.OpPushI8, bytecode.OpPushI16, bytecode.OpPushI32:
				stack[sp] = in.a
				sp++
			case bytecode.OpDup:
				stack[sp] = stack[sp-1]
				sp++
			case bytecode.OpDrop:
				sp--

			case bytecode.OpLoadStatic:
				stack[sp] = statics[in.a][0]
				sp++
			case bytecode.OpStoreStatic:
				sp--
				statics[in.a][0] = stack[sp]
			case bytecode.OpLoadLocal:
				stack[sp] = locals[in.a]
				sp++
			case bytecode.OpStoreLocal:
				sp--
				locals[in.a] = stack[sp]
			case bytecode.OpLoadElem:
				idx := stack[sp-1]
				slot := statics[in.a]
				if idx < 0 || int(idx) >= len(slot) {
					return blockTrapAt(ch, b, k, entrySteps, entryEtime, res, TrapIndexRange)
				}
				stack[sp-1] = slot[idx]
			case bytecode.OpStoreElem:
				val := stack[sp-1]
				idx := stack[sp-2]
				sp -= 2
				slot := statics[in.a]
				if idx < 0 || int(idx) >= len(slot) {
					return blockTrapAt(ch, b, k, entrySteps, entryEtime, res, TrapIndexRange)
				}
				slot[idx] = val

			case bytecode.OpAdd:
				stack[sp-2] += stack[sp-1]
				sp--
			case bytecode.OpSub:
				stack[sp-2] -= stack[sp-1]
				sp--
			case bytecode.OpMul:
				stack[sp-2] *= stack[sp-1]
				sp--
			case bytecode.OpDiv:
				r := stack[sp-1]
				if r == 0 {
					return blockTrapAt(ch, b, k, entrySteps, entryEtime, res, TrapDivByZero)
				}
				stack[sp-2] /= r
				sp--
			case bytecode.OpMod:
				r := stack[sp-1]
				if r == 0 {
					return blockTrapAt(ch, b, k, entrySteps, entryEtime, res, TrapDivByZero)
				}
				stack[sp-2] %= r
				sp--
			case bytecode.OpBitAnd:
				stack[sp-2] &= stack[sp-1]
				sp--
			case bytecode.OpBitOr:
				stack[sp-2] |= stack[sp-1]
				sp--
			case bytecode.OpBitXor:
				stack[sp-2] ^= stack[sp-1]
				sp--
			case bytecode.OpShl:
				stack[sp-2] <<= uint32(stack[sp-1]) & 31
				sp--
			case bytecode.OpShr:
				stack[sp-2] >>= uint32(stack[sp-1]) & 31
				sp--
			case bytecode.OpEq:
				stack[sp-2] = b2i(stack[sp-2] == stack[sp-1])
				sp--
			case bytecode.OpNe:
				stack[sp-2] = b2i(stack[sp-2] != stack[sp-1])
				sp--
			case bytecode.OpLt:
				stack[sp-2] = b2i(stack[sp-2] < stack[sp-1])
				sp--
			case bytecode.OpLe:
				stack[sp-2] = b2i(stack[sp-2] <= stack[sp-1])
				sp--
			case bytecode.OpGt:
				stack[sp-2] = b2i(stack[sp-2] > stack[sp-1])
				sp--
			case bytecode.OpGe:
				stack[sp-2] = b2i(stack[sp-2] >= stack[sp-1])
				sp--

			case bytecode.OpNeg:
				stack[sp-1] = -stack[sp-1]
			case bytecode.OpNot:
				if stack[sp-1] == 0 {
					stack[sp-1] = 1
				} else {
					stack[sp-1] = 0
				}

			// Control transfers only occur at k == b.end, so setting next
			// here never skips block members.
			case bytecode.OpJmp:
				next = int(in.a)
			case bytecode.OpJz:
				sp--
				if stack[sp] == 0 {
					next = int(in.a)
				}
			case bytecode.OpJnz:
				sp--
				if stack[sp] != 0 {
					next = int(in.a)
				}

			case bytecode.OpSignal:
				argc := int(in.a)
				// Signal.Args are arena-backed like the rest of RunResult:
				// valid until the next Run, copied by any caller that keeps
				// them longer (routeSignal's self-post is the one such site).
				sargs := m.argAlloc(argc)
				sp -= argc
				copy(sargs, stack[sp:sp+argc])
				res.Signals = append(res.Signals, Signal{Dest: in.dest, Event: in.event, Args: sargs})
				m.sigScratch = res.Signals

			// Returns end their block, so the bulk-applied accounting is
			// already exact here.
			case bytecode.OpReturnVoid, bytecode.OpHalt:
				res.Instructions = steps
				res.EmulatedTime = etime
				return nil
			case bytecode.OpReturnTop:
				res.Instructions = steps
				res.EmulatedTime = etime
				res.HasReturn = true
				m.retScratch = append(m.retScratch[:0], stack[sp-1])
				res.Returned = m.retScratch
				return nil
			case bytecode.OpReturnStatic:
				res.Instructions = steps
				res.EmulatedTime = etime
				res.HasReturn = true
				m.retScratch = append(m.retScratch[:0], statics[in.a]...)
				res.Returned = m.retScratch
				return nil
			}
		}
		bi = next
	}
	res.Instructions = steps
	res.EmulatedTime = etime
	return nil
}

// runCompiledChecked is the per-instruction slow path, entered from block
// bi when its precheck fails (imminent fuel or stack trap). It re-applies
// the interpreter's exact per-instruction check order — fuel, count, stack
// bounds, cost, execute — so the trap surfaces at the same PC after the
// same instruction count.
func (m *Machine) runCompiledChecked(ch *compiledHandler, bi, sp int, locals *[bytecode.MaxLocals]int32, steps int, etime time.Duration, res *RunResult) error {
	maxStack := m.MaxStack
	stack := m.scratch[:maxStack]
	fuel := m.Fuel
	statics := m.statics
	ins := ch.ins
	blocks := ch.blocks

	trap := func(kind Trap, pc int32, steps int, etime time.Duration) error {
		res.Instructions = steps
		res.EmulatedTime = etime
		return &TrapError{Trap: kind, Handler: ch.name, PC: int(pc)}
	}
	// jumpTo resolves a block index to its first instruction; past-the-end
	// means fall off the handler.
	done := len(ins)
	jumpTo := func(b int32) int {
		if int(b) >= len(blocks) {
			return done
		}
		return int(blocks[b].start)
	}

	for k := jumpTo(int32(bi)); k < len(ins); {
		in := &ins[k]
		if steps >= fuel {
			return trap(TrapFuelExhausted, in.pc, steps, etime)
		}
		steps++
		nsp := sp - int(in.pops)
		if nsp < 0 || nsp+int(in.pushes) > maxStack {
			return trap(TrapStackOverflow, in.pc, steps, etime)
		}
		etime += in.cost

		switch in.op {
		case bytecode.OpNop:

		case bytecode.OpPushI8, bytecode.OpPushI16, bytecode.OpPushI32:
			stack[sp] = in.a
			sp++
		case bytecode.OpDup:
			// Dup declares pops=0, so the generic bound above does not
			// cover the read of the current top (mirrors runInterp).
			if sp == 0 {
				return trap(TrapStackOverflow, in.pc, steps, etime)
			}
			stack[sp] = stack[sp-1]
			sp++
		case bytecode.OpDrop:
			sp--

		case bytecode.OpLoadStatic:
			stack[sp] = statics[in.a][0]
			sp++
		case bytecode.OpStoreStatic:
			sp--
			statics[in.a][0] = stack[sp]
		case bytecode.OpLoadLocal:
			stack[sp] = locals[in.a]
			sp++
		case bytecode.OpStoreLocal:
			sp--
			locals[in.a] = stack[sp]
		case bytecode.OpLoadElem:
			idx := stack[sp-1]
			slot := statics[in.a]
			if idx < 0 || int(idx) >= len(slot) {
				return trap(TrapIndexRange, in.pc, steps, etime)
			}
			stack[sp-1] = slot[idx]
		case bytecode.OpStoreElem:
			val := stack[sp-1]
			idx := stack[sp-2]
			sp -= 2
			slot := statics[in.a]
			if idx < 0 || int(idx) >= len(slot) {
				return trap(TrapIndexRange, in.pc, steps, etime)
			}
			slot[idx] = val

		case bytecode.OpAdd:
			stack[sp-2] += stack[sp-1]
			sp--
		case bytecode.OpSub:
			stack[sp-2] -= stack[sp-1]
			sp--
		case bytecode.OpMul:
			stack[sp-2] *= stack[sp-1]
			sp--
		case bytecode.OpDiv:
			r := stack[sp-1]
			if r == 0 {
				return trap(TrapDivByZero, in.pc, steps, etime)
			}
			stack[sp-2] /= r
			sp--
		case bytecode.OpMod:
			r := stack[sp-1]
			if r == 0 {
				return trap(TrapDivByZero, in.pc, steps, etime)
			}
			stack[sp-2] %= r
			sp--
		case bytecode.OpBitAnd:
			stack[sp-2] &= stack[sp-1]
			sp--
		case bytecode.OpBitOr:
			stack[sp-2] |= stack[sp-1]
			sp--
		case bytecode.OpBitXor:
			stack[sp-2] ^= stack[sp-1]
			sp--
		case bytecode.OpShl:
			stack[sp-2] <<= uint32(stack[sp-1]) & 31
			sp--
		case bytecode.OpShr:
			stack[sp-2] >>= uint32(stack[sp-1]) & 31
			sp--
		case bytecode.OpEq:
			stack[sp-2] = b2i(stack[sp-2] == stack[sp-1])
			sp--
		case bytecode.OpNe:
			stack[sp-2] = b2i(stack[sp-2] != stack[sp-1])
			sp--
		case bytecode.OpLt:
			stack[sp-2] = b2i(stack[sp-2] < stack[sp-1])
			sp--
		case bytecode.OpLe:
			stack[sp-2] = b2i(stack[sp-2] <= stack[sp-1])
			sp--
		case bytecode.OpGt:
			stack[sp-2] = b2i(stack[sp-2] > stack[sp-1])
			sp--
		case bytecode.OpGe:
			stack[sp-2] = b2i(stack[sp-2] >= stack[sp-1])
			sp--

		case bytecode.OpNeg:
			stack[sp-1] = -stack[sp-1]
		case bytecode.OpNot:
			if stack[sp-1] == 0 {
				stack[sp-1] = 1
			} else {
				stack[sp-1] = 0
			}

		case bytecode.OpJmp:
			k = jumpTo(in.a)
			continue
		case bytecode.OpJz:
			sp--
			if stack[sp] == 0 {
				k = jumpTo(in.a)
				continue
			}
		case bytecode.OpJnz:
			sp--
			if stack[sp] != 0 {
				k = jumpTo(in.a)
				continue
			}

		case bytecode.OpSignal:
			argc := int(in.a)
			sargs := m.argAlloc(argc)
			sp -= argc
			copy(sargs, stack[sp:sp+argc])
			res.Signals = append(res.Signals, Signal{Dest: in.dest, Event: in.event, Args: sargs})
			m.sigScratch = res.Signals

		case bytecode.OpReturnVoid, bytecode.OpHalt:
			res.Instructions = steps
			res.EmulatedTime = etime
			return nil
		case bytecode.OpReturnTop:
			res.Instructions = steps
			res.EmulatedTime = etime
			res.HasReturn = true
			m.retScratch = append(m.retScratch[:0], stack[sp-1])
			res.Returned = m.retScratch
			return nil
		case bytecode.OpReturnStatic:
			res.Instructions = steps
			res.EmulatedTime = etime
			res.HasReturn = true
			m.retScratch = append(m.retScratch[:0], statics[in.a]...)
			res.Returned = m.retScratch
			return nil
		}
		k++
	}
	res.Instructions = steps
	res.EmulatedTime = etime
	return nil
}
