package vm

import (
	"testing"

	"micropnp/internal/bus"
	"micropnp/internal/dsl"
)

// rfidDriver is the Listing 1 driver (ID-20LA RFID reader) compiled from the
// DSL and run against the simulated UART peripheral — the full §4 pipeline.
const rfidDriver = `import uart;

uint8_t idx, rfid[12];
bool busy;

event init():
    signal uart.init(9600, USART_PARITY_NONE, USART_STOP_BITS_1, USART_DATA_BITS_8);
    idx = 0;
    busy = false;

event destroy():
    signal uart.reset();

event read():
    if !busy:
        busy = true;
        signal uart.read();

event newdata(char c):
    if !(c==0x0d or c==0x0a or c==0x02 or c==0x03):
        rfid[idx++] = c;
    if idx == 12:
        signal this.readDone();

event readDone():
    busy = false;
    idx = 0;
    return rfid;

error invalidConfiguration():
    signal this.destroy();

error uartInUse():
    signal this.destroy();

error timeOut():
    busy = false;
    idx = 0;
`

func newRFIDRuntime(t *testing.T) (*Runtime, *bus.ID20LA, *bus.UART) {
	t.Helper()
	prog, err := dsl.Compile(rfidDriver, 0xed3f0ac1)
	if err != nil {
		t.Fatal(err)
	}
	port := bus.NewUART()
	rt, err := NewRuntime(prog, &UARTLib{Port: port}, &TimerLib{})
	if err != nil {
		t.Fatal(err)
	}
	return rt, bus.NewID20LA(port), port
}

func TestRFIDReadEndToEnd(t *testing.T) {
	rt, reader, port := newRFIDRuntime(t)
	var returned [][]int32
	rt.OnReturn(func(v []int32) { returned = append(returned, v) })

	rt.Start()
	if _, open := port.Config(); !open {
		t.Fatal("init must open the UART")
	}
	cfg, _ := port.Config()
	if cfg.Baud != 9600 || cfg.DataBits != 8 || cfg.StopBits != 1 {
		t.Fatalf("uart config = %+v", cfg)
	}

	// Remote read request arrives, then a card enters the field.
	rt.Post("read")
	rt.Step() // dispatch read -> arms the uart
	if err := reader.PresentCard("0415AB96C3"); err != nil {
		t.Fatal(err)
	}
	rt.RunUntilIdle(0)

	if len(returned) != 1 {
		t.Fatalf("returned %d values, want 1", len(returned))
	}
	got := make([]byte, len(returned[0]))
	for i, v := range returned[0] {
		got[i] = byte(v)
	}
	if string(got[:10]) != "0415AB96C3" {
		t.Fatalf("card ID = %q", got[:10])
	}
	if !bus.ChecksumOK(got) {
		t.Fatal("returned payload must pass the ID-20LA checksum")
	}
	// busy must have been cleared by readDone.
	if rt.Machine().Static(2)[0] != 0 {
		t.Fatal("busy flag must clear after readDone")
	}
}

func TestRFIDReadTimeout(t *testing.T) {
	rt, _, _ := newRFIDRuntime(t)
	rt.Start()
	rt.Post("read")
	rt.RunUntilIdle(0) // no card presented: virtual clock hits the timeout

	// The timeOut error handler must have reset busy and idx.
	if rt.Machine().Static(2)[0] != 0 {
		t.Fatal("busy must be reset by the timeOut handler")
	}
	if rt.Machine().Static(0)[0] != 0 {
		t.Fatal("idx must be reset by the timeOut handler")
	}
	// A later read must work again.
	var returned [][]int32
	rt.OnReturn(func(v []int32) { returned = append(returned, v) })
	rt.Post("read")
	rt.Step()
	reader := bus.NewID20LA(portOf(rt))
	if err := reader.PresentCard("AA00FF1234"); err != nil {
		t.Fatal(err)
	}
	rt.RunUntilIdle(0)
	if len(returned) != 1 {
		t.Fatalf("read after timeout returned %d values", len(returned))
	}
}

// portOf digs the UART out of the runtime's library set (test helper).
func portOf(rt *Runtime) *bus.UART {
	return rt.libs["uart"].(*UARTLib).Port
}

func TestRFIDBusyIgnoresConcurrentReads(t *testing.T) {
	rt, reader, _ := newRFIDRuntime(t)
	var returned [][]int32
	rt.OnReturn(func(v []int32) { returned = append(returned, v) })
	rt.Start()

	rt.Post("read")
	rt.Post("read") // second read while busy: driver must ignore it
	rt.Step()
	rt.Step()
	if err := reader.PresentCard("0415AB96C3"); err != nil {
		t.Fatal(err)
	}
	rt.RunUntilIdle(0)
	if len(returned) != 1 {
		t.Fatalf("returned %d values, want exactly 1", len(returned))
	}
}

func TestRFIDDestroyResetsUART(t *testing.T) {
	rt, _, port := newRFIDRuntime(t)
	rt.Start()
	rt.Stop()
	if _, open := port.Config(); open {
		t.Fatal("destroy must reset the UART to platform defaults")
	}
}

func TestUARTInvalidConfiguration(t *testing.T) {
	src := `import uart;

int32_t dead;

event init():
    signal uart.init(42, USART_PARITY_NONE, USART_STOP_BITS_1, USART_DATA_BITS_8);

event destroy():
    signal uart.reset();

error invalidConfiguration():
    dead = 1;
`
	prog, err := dsl.Compile(src, 5)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(prog, &UARTLib{Port: bus.NewUART()})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	if rt.Machine().Static(0)[0] != 1 {
		t.Fatal("invalidConfiguration error handler must run for a 42-baud init")
	}
}

func TestUARTInUse(t *testing.T) {
	src := `import uart;

int32_t conflicts;

event init():
    signal uart.init(9600, USART_PARITY_NONE, USART_STOP_BITS_1, USART_DATA_BITS_8);
    signal uart.init(9600, USART_PARITY_NONE, USART_STOP_BITS_1, USART_DATA_BITS_8);

event destroy():
    signal uart.reset();

error uartInUse():
    conflicts++;
`
	prog, err := dsl.Compile(src, 6)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(prog, &UARTLib{Port: bus.NewUART()})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	if rt.Machine().Static(0)[0] != 1 {
		t.Fatal("second init on an open port must raise uartInUse")
	}
}
