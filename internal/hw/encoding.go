package hw

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// DeviceID is a µPnP device-type identifier: 32 bits drawn from the open
// global µPnP address space (Section 3.3). The hardware encodes it as four
// timed pulses, one byte per pulse (Figure 3).
type DeviceID uint32

// Reserved identifiers from the multicast addressing schema (Section 5.1).
const (
	// DeviceIDAllPeripherals (0x00000000) represents all peripherals.
	DeviceIDAllPeripherals DeviceID = 0x00000000
	// DeviceIDAllClients (0xffffffff) represents all µPnP clients.
	DeviceIDAllClients DeviceID = 0xffffffff
)

// Bytes splits the identifier into the four byte values carried by pulses
// T1..T4, most significant first.
func (id DeviceID) Bytes() [4]byte {
	return [4]byte{byte(id >> 24), byte(id >> 16), byte(id >> 8), byte(id)}
}

// DeviceIDFromBytes reassembles an identifier from the four pulse bytes.
func DeviceIDFromBytes(b [4]byte) DeviceID {
	return DeviceID(b[0])<<24 | DeviceID(b[1])<<16 | DeviceID(b[2])<<8 | DeviceID(b[3])
}

// Reserved reports whether the identifier is one of the two reserved values
// that may not be assigned to a physical peripheral type.
func (id DeviceID) Reserved() bool {
	return id == DeviceIDAllPeripherals || id == DeviceIDAllClients
}

func (id DeviceID) String() string { return fmt.Sprintf("0x%08x", uint32(id)) }

// PulseCoder maps byte values to pulse durations and back.
//
// Because passive-component error is relative (a ±0.5% resistor is off by
// 0.5% of its value whether it is 1kΩ or 1MΩ), the 256 decode bins are spaced
// logarithmically: bin b covers durations around TMin·Ratio^b. Adjacent bins
// are separated by the constant factor Ratio, so a measured pulse decodes
// correctly as long as the total relative timing error stays below
// (Ratio-1)/2. A linear spacing would instead need the guard band to grow
// with the value — the "component values grow exponentially" problem the
// paper cites [21] to justify splitting the identifier into 4 short pulses.
type PulseCoder struct {
	// TMin is the duration encoding byte value 0.
	TMin time.Duration
	// Ratio is the multiplicative spacing between adjacent bins (> 1).
	Ratio float64
}

// DefaultPulseCoder is calibrated so that a 4-pulse identification train
// spans the per-identification timing window reported in Section 6.1
// (220–300 ms total process time once the board's channel-scan overhead is
// included; see ControlBoard).
var DefaultPulseCoder = PulseCoder{TMin: 1500 * time.Microsecond, Ratio: 1.0105}

// ErrPulseOutOfRange reports a measured pulse outside the decodable window.
var ErrPulseOutOfRange = errors.New("hw: pulse length outside decodable window")

// TMax returns the duration encoding byte value 255, the longest legal pulse.
func (pc PulseCoder) TMax() time.Duration {
	return pc.Duration(255)
}

// GuardBand returns the maximum tolerable total relative timing error for
// unambiguous decoding: half the spacing between adjacent bins.
func (pc PulseCoder) GuardBand() float64 {
	return (pc.Ratio - 1) / 2
}

// Duration returns the nominal pulse duration that encodes byte value b.
func (pc PulseCoder) Duration(b byte) time.Duration {
	t := float64(pc.TMin) * math.Pow(pc.Ratio, float64(b))
	return time.Duration(math.Round(t))
}

// Byte decodes a measured pulse duration to the nearest byte bin. It fails
// if the pulse falls more than half a bin outside the legal window.
func (pc PulseCoder) Byte(t time.Duration) (byte, error) {
	if t <= 0 {
		return 0, ErrPulseOutOfRange
	}
	idx := math.Log(float64(t)/float64(pc.TMin)) / math.Log(pc.Ratio)
	bin := math.Round(idx)
	if bin < -0.5 || bin > 255.5 {
		return 0, ErrPulseOutOfRange
	}
	if bin < 0 {
		bin = 0
	}
	if bin > 255 {
		bin = 255
	}
	return byte(bin), nil
}

// EncodeID returns the four nominal pulse durations (T1..T4 of Figure 3)
// encoding the identifier.
func (pc PulseCoder) EncodeID(id DeviceID) [4]time.Duration {
	var out [4]time.Duration
	for i, b := range id.Bytes() {
		out[i] = pc.Duration(b)
	}
	return out
}

// DecodeID converts four measured pulse durations back to an identifier.
func (pc PulseCoder) DecodeID(pulses [4]time.Duration) (DeviceID, error) {
	var bs [4]byte
	for i, t := range pulses {
		b, err := pc.Byte(t)
		if err != nil {
			return 0, fmt.Errorf("pulse T%d (%v): %w", i+1, t, err)
		}
		bs[i] = b
	}
	return DeviceIDFromBytes(bs), nil
}

// TrainDuration returns the total duration of the 4-pulse train for id,
// i.e. T1+T2+T3+T4. This is what the identification slot on the control
// board must wait out.
func (pc PulseCoder) TrainDuration(id DeviceID) time.Duration {
	var sum time.Duration
	for _, t := range pc.EncodeID(id) {
		sum += t
	}
	return sum
}

// Resistors returns the four nominal peripheral-side resistor values that
// encode id when measured through the given multivibrator (Figure 4: R1..R4).
func (pc PulseCoder) Resistors(id DeviceID, m Multivibrator) [4]Ohm {
	var out [4]Ohm
	for i, t := range pc.EncodeID(id) {
		out[i] = m.ResistorFor(t)
	}
	return out
}

// SinglePulseCoder models the design alternative the paper rejects: encoding
// the whole n-bit identifier in ONE pulse. With 2^n logarithmic bins at the
// same guard band, the worst-case pulse is TMin·Ratio^(2^n-1) — exponentially
// longer than the 4-pulse train. Used by the ablation benchmark.
type SinglePulseCoder struct {
	TMin  time.Duration
	Ratio float64
	Bits  uint // identifier width in bits (≤ 32)
}

// WorstCase returns the longest pulse the scheme can produce. The result
// saturates at math.MaxInt64 (≈292 years) — for Bits=32 at any realistic
// guard band the true value overflows any physical timer.
func (sc SinglePulseCoder) WorstCase() time.Duration {
	bins := math.Pow(2, float64(sc.Bits)) - 1
	t := float64(sc.TMin) * math.Pow(sc.Ratio, bins)
	if t > math.MaxInt64 || math.IsInf(t, 1) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(t)
}

// Duration returns the pulse encoding value v (< 2^Bits).
func (sc SinglePulseCoder) Duration(v uint64) time.Duration {
	t := float64(sc.TMin) * math.Pow(sc.Ratio, float64(v))
	if t > math.MaxInt64 || math.IsInf(t, 1) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(math.Round(t))
}
