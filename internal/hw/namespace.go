package hw

import "fmt"

// Structured identifiers — the Section 9 name-space redesign.
//
// The paper's future work proposes restructuring the flat 32-bit address
// space along the lines of PCI/USB identification: a vendor identifier plus
// a device identifier, extended with hierarchical device typing. This
// implementation splits the 32-bit identifier as
//
//	| vendor : 16 | class : 8 | product : 8 |
//
// Vendor 0 is reserved: identifiers with vendor 0 and product 0 act as
// class wildcards, giving every device class its own multicast group so
// clients can discover "any temperature sensor" without knowing vendors.
// Identifiers allocated before the redesign (such as the paper's worked
// examples) remain valid flat identifiers — structure is opt-in at
// allocation time.

// StructuredID is the decomposed form of a structured device identifier.
type StructuredID struct {
	Vendor  uint16
	Class   uint8
	Product uint8
}

// Device classes of the hierarchical typing extension.
const (
	ClassUnspecified     uint8 = 0x00
	ClassTemperature     uint8 = 0x01
	ClassHumidity        uint8 = 0x02
	ClassPressure        uint8 = 0x03
	ClassIdentification  uint8 = 0x04 // RFID and similar readers
	ClassLight           uint8 = 0x05
	ClassAccelerometer   uint8 = 0x06
	ClassActuatorRelay   uint8 = 0x10
	ClassActuatorDisplay uint8 = 0x11
	ClassActuatorAudio   uint8 = 0x12
	ClassRadio           uint8 = 0x20
)

var classNames = map[uint8]string{
	ClassUnspecified: "unspecified", ClassTemperature: "temperature",
	ClassHumidity: "humidity", ClassPressure: "pressure",
	ClassIdentification: "identification", ClassLight: "light",
	ClassAccelerometer: "accelerometer", ClassActuatorRelay: "relay",
	ClassActuatorDisplay: "display", ClassActuatorAudio: "audio",
	ClassRadio: "radio",
}

// ClassName returns a human-readable class label.
func ClassName(class uint8) string {
	if n, ok := classNames[class]; ok {
		return n
	}
	return fmt.Sprintf("class(0x%02x)", class)
}

// Structured decomposes a device identifier.
func (id DeviceID) Structured() StructuredID {
	return StructuredID{
		Vendor:  uint16(id >> 16),
		Class:   uint8(id >> 8),
		Product: uint8(id),
	}
}

// DeviceID reassembles the flat identifier.
func (s StructuredID) DeviceID() DeviceID {
	return DeviceID(s.Vendor)<<16 | DeviceID(s.Class)<<8 | DeviceID(s.Product)
}

// IsClassWildcard reports whether the identifier addresses a whole device
// class (vendor 0, product 0, class non-zero).
func (s StructuredID) IsClassWildcard() bool {
	return s.Vendor == 0 && s.Product == 0 && s.Class != 0
}

func (s StructuredID) String() string {
	return fmt.Sprintf("vendor=0x%04x class=%s product=0x%02x", s.Vendor, ClassName(s.Class), s.Product)
}

// MakeStructuredID allocates a structured identifier. Vendor 0 is reserved
// for class wildcards, product 0 is reserved within each (vendor, class).
func MakeStructuredID(vendor uint16, class, product uint8) (DeviceID, error) {
	if vendor == 0 {
		return 0, fmt.Errorf("hw: vendor 0 is reserved for class wildcards")
	}
	if product == 0 {
		return 0, fmt.Errorf("hw: product 0 is reserved")
	}
	id := StructuredID{Vendor: vendor, Class: class, Product: product}.DeviceID()
	if id.Reserved() {
		return 0, fmt.Errorf("hw: identifier %v is reserved", id)
	}
	return id, nil
}

// ClassWildcard returns the wildcard identifier for a device class, used as
// the class-scoped multicast group address suffix.
func ClassWildcard(class uint8) DeviceID {
	return StructuredID{Class: class}.DeviceID()
}
