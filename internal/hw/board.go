package hw

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Joule is an energy quantity in joules.
type Joule float64

// Watt is a power quantity in watts.
type Watt float64

// Energy consumed by power P over duration d.
func (p Watt) Energy(d time.Duration) Joule { return Joule(float64(p) * d.Seconds()) }

// Timing and power calibration of the prototype control board (Section 6.1).
//
// The identification process scans every channel in sequence (Figure 5): the
// board arms a channel, triggers the multivibrator chain, and measures the
// pulse train; an unconnected channel is detected by the absence of a pulse
// within a timeout slightly above the longest legal pulse train.
//
// With the default 3-channel board and one peripheral connected this yields
// a process time between 220 ms (all-zero identifier) and 300 ms (all-0xff),
// matching the measured window in Section 6.1.
//
// The two power levels are derived from the paper's measured energy
// endpoints: solving Pscan·214ms + Ptrain·6ms = 2.48 mJ and
// Pscan·214ms + Ptrain·86ms = 6.756 mJ gives Pscan ≈ 10.1 mW and
// Ptrain ≈ 53.5 mW, for a worst-case average draw of ≈6.8 mA at 3.3 V —
// consistent with the paper's "average of 7 mA at 3.3V".
const (
	DefaultChannels = 3

	// TriggerOverhead is the one-off cost of waking the board and issuing
	// the start trigger.
	TriggerOverhead = 2 * time.Millisecond
	// ChannelSettle is the per-channel arming/multiplexing time.
	ChannelSettle = 24 * time.Millisecond
	// NoPulseTimeout is how long the board waits on an unconnected channel
	// before concluding nothing is attached.
	NoPulseTimeout = 70 * time.Millisecond

	// PowerScan is the board draw while arming channels and waiting.
	PowerScan Watt = 10.09e-3
	// PowerTrain is the board draw while a multivibrator chain is firing.
	PowerTrain Watt = 53.45e-3
	// SupplyVoltage of the control board.
	SupplyVoltage = 3.3
)

// BoardConfig configures a simulated control board.
type BoardConfig struct {
	// Channels is the number of peripheral channels (default 3, as in the
	// prototype of Figure 5).
	Channels int
	// Coder is the pulse encoding (default DefaultPulseCoder).
	Coder PulseCoder
	// Vibrator describes the timing circuit (default DefaultMultivibrator).
	// Each board samples its own four timing capacitors once at build time.
	Vibrator Multivibrator
	// TimerResolution quantises pulse measurements (default 500 ns, a 16 MHz
	// AVR timer with /8 prescaler). Zero uses the default; a negative value
	// disables quantisation.
	TimerResolution time.Duration
	// MeasurementJitter is an extra relative timing error sampled per pulse
	// (models trigger skew and comparator delay). Default 0.
	MeasurementJitter float64
	// Rng drives capacitor manufacturing and measurement jitter. Nil keeps
	// everything nominal and deterministic.
	Rng *rand.Rand
}

// DefaultTimerResolution quantises pulse-length measurement.
const DefaultTimerResolution = 500 * time.Nanosecond

// ChannelReading is the outcome of identifying one channel.
type ChannelReading struct {
	Channel   int
	Connected bool
	// ID is the decoded identifier (valid only when Err is nil and
	// Connected is true).
	ID DeviceID
	// Pulses are the measured pulse lengths T1..T4.
	Pulses [4]time.Duration
	// Train is the total pulse-train duration.
	Train time.Duration
	// Err reports a decode failure (e.g. out-of-tolerance components).
	Err error
}

// IdentifyResult aggregates a full identification scan.
type IdentifyResult struct {
	Readings []ChannelReading
	// Duration is the total process time (trigger + all channel slots).
	Duration time.Duration
	// Energy is the board energy consumed by the scan.
	Energy Joule
}

// Interrupt is delivered when a peripheral is connected or disconnected
// (the INT line of Figure 4). Receipt of an interrupt is what powers the
// board up and prompts the host MCU to run the identification routine.
type Interrupt struct {
	Channel  int
	Attached bool
}

// ControlBoard simulates the µPnP control board: a bank of four shared
// multivibrators time-multiplexed over N peripheral channels, an interrupt
// circuit, and the power gating that keeps the board off except during
// identification scans.
type ControlBoard struct {
	cfg  BoardConfig
	caps [4]Farad // as-manufactured timing capacitors

	mu          sync.Mutex
	slots       []*Peripheral
	interruptFn func(Interrupt)

	stats BoardStats
}

// BoardStats accumulates lifetime counters for the board.
type BoardStats struct {
	Scans       int
	Interrupts  int
	ActiveTime  time.Duration
	EnergyTotal Joule
}

// NewControlBoard builds a board, sampling its timing capacitors once.
func NewControlBoard(cfg BoardConfig) *ControlBoard {
	if cfg.Channels <= 0 {
		cfg.Channels = DefaultChannels
	}
	if cfg.Coder.TMin == 0 {
		cfg.Coder = DefaultPulseCoder
	}
	if cfg.Vibrator.K == 0 {
		cfg.Vibrator = DefaultMultivibrator
	}
	if cfg.TimerResolution == 0 {
		cfg.TimerResolution = DefaultTimerResolution
	}
	b := &ControlBoard{cfg: cfg, slots: make([]*Peripheral, cfg.Channels)}
	for i := range b.caps {
		b.caps[i] = cfg.Vibrator.C.Actual(cfg.Rng)
	}
	return b
}

// Channels returns the number of peripheral channels.
func (b *ControlBoard) Channels() int { return len(b.slots) }

// OnInterrupt registers the host MCU's interrupt service routine. It is
// invoked synchronously from Plug and Unplug.
func (b *ControlBoard) OnInterrupt(fn func(Interrupt)) {
	b.mu.Lock()
	b.interruptFn = fn
	b.mu.Unlock()
}

// Plug connects a peripheral to a channel and raises the attach interrupt.
func (b *ControlBoard) Plug(channel int, p *Peripheral) error {
	b.mu.Lock()
	if channel < 0 || channel >= len(b.slots) {
		b.mu.Unlock()
		return fmt.Errorf("hw: channel %d out of range [0,%d)", channel, len(b.slots))
	}
	if b.slots[channel] != nil {
		b.mu.Unlock()
		return fmt.Errorf("hw: channel %d already occupied", channel)
	}
	b.slots[channel] = p
	b.stats.Interrupts++
	fn := b.interruptFn
	b.mu.Unlock()
	if fn != nil {
		fn(Interrupt{Channel: channel, Attached: true})
	}
	return nil
}

// Unplug disconnects the peripheral on a channel and raises the detach
// interrupt. It returns the removed peripheral.
func (b *ControlBoard) Unplug(channel int) (*Peripheral, error) {
	b.mu.Lock()
	if channel < 0 || channel >= len(b.slots) {
		b.mu.Unlock()
		return nil, fmt.Errorf("hw: channel %d out of range [0,%d)", channel, len(b.slots))
	}
	p := b.slots[channel]
	if p == nil {
		b.mu.Unlock()
		return nil, fmt.Errorf("hw: channel %d is empty", channel)
	}
	b.slots[channel] = nil
	b.stats.Interrupts++
	fn := b.interruptFn
	b.mu.Unlock()
	if fn != nil {
		fn(Interrupt{Channel: channel, Attached: false})
	}
	return p, nil
}

// Peripheral returns the peripheral connected to a channel, or nil.
func (b *ControlBoard) Peripheral(channel int) *Peripheral {
	b.mu.Lock()
	defer b.mu.Unlock()
	if channel < 0 || channel >= len(b.slots) {
		return nil
	}
	return b.slots[channel]
}

// Stats returns a snapshot of the lifetime counters.
func (b *ControlBoard) Stats() BoardStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Identify runs the full identification scan (Figure 5): every channel is
// enabled for its time slot in sequence; connected channels produce a
// 4-pulse train that is measured and decoded, unconnected channels burn the
// no-pulse timeout. The returned result carries per-channel readings plus
// the total process time and energy.
//
// The simulation is instantaneous in wall-clock terms: Duration and Energy
// report what the physical process would have cost.
func (b *ControlBoard) Identify() IdentifyResult {
	b.mu.Lock()
	defer b.mu.Unlock()

	res := IdentifyResult{Duration: TriggerOverhead}
	var scanTime = TriggerOverhead
	var trainTime time.Duration

	for ch, p := range b.slots {
		scanTime += ChannelSettle
		reading := ChannelReading{Channel: ch}
		if p == nil {
			scanTime += NoPulseTimeout
			res.Readings = append(res.Readings, reading)
			continue
		}
		reading.Connected = true
		actual := p.ActualResistances()
		for i := 0; i < 4; i++ {
			t := b.pulse(actual[i], i)
			reading.Pulses[i] = t
			reading.Train += t
		}
		trainTime += reading.Train
		reading.ID, reading.Err = b.cfg.Coder.DecodeID(reading.Pulses)
		res.Readings = append(res.Readings, reading)
	}

	res.Duration = scanTime + trainTime
	res.Energy = PowerScan.Energy(scanTime) + PowerTrain.Energy(trainTime)

	b.stats.Scans++
	b.stats.ActiveTime += res.Duration
	b.stats.EnergyTotal += res.Energy
	return res
}

// pulse measures one multivibrator firing for resistance r using timing
// capacitor slot i, applying measurement jitter and timer quantisation.
func (b *ControlBoard) pulse(r Ohm, i int) time.Duration {
	secs := b.cfg.Vibrator.K * float64(r) * float64(b.caps[i%len(b.caps)])
	if b.cfg.MeasurementJitter > 0 && b.cfg.Rng != nil {
		dev := (b.cfg.Rng.Float64()*2 - 1) * b.cfg.MeasurementJitter
		secs *= 1 + dev
	}
	t := time.Duration(secs * float64(time.Second))
	if res := b.cfg.TimerResolution; res > 0 {
		t = (t + res/2) / res * res // round to the nearest timer tick
	}
	return t
}

// WorstCaseScanTime returns the longest possible identification process for
// a board with n channels all connected (used for calibration tests and the
// documentation of the 220–300 ms window).
func WorstCaseScanTime(cfg BoardConfig, connected int) time.Duration {
	if cfg.Channels <= 0 {
		cfg.Channels = DefaultChannels
	}
	if cfg.Coder.TMin == 0 {
		cfg.Coder = DefaultPulseCoder
	}
	d := TriggerOverhead + time.Duration(cfg.Channels)*ChannelSettle
	d += time.Duration(cfg.Channels-connected) * NoPulseTimeout
	d += time.Duration(connected) * 4 * cfg.Coder.TMax()
	return d
}
