package hw

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Edge is a logic-level transition on a named signal at a point in time.
type Edge struct {
	Signal string
	At     time.Duration
	Level  bool // level after the transition
}

// Waveform is a set of logic transitions, the simulated equivalent of the
// oscilloscope traces in Figures 2, 3 and 5 of the paper.
type Waveform struct {
	Edges []Edge
}

func (w *Waveform) add(signal string, at time.Duration, level bool) {
	w.Edges = append(w.Edges, Edge{Signal: signal, At: at, Level: level})
}

// Signals returns the distinct signal names in first-appearance order.
func (w *Waveform) Signals() []string {
	var out []string
	seen := map[string]bool{}
	for _, e := range w.Edges {
		if !seen[e.Signal] {
			seen[e.Signal] = true
			out = append(out, e.Signal)
		}
	}
	return out
}

// End returns the time of the final edge.
func (w *Waveform) End() time.Duration {
	var end time.Duration
	for _, e := range w.Edges {
		if e.At > end {
			end = e.At
		}
	}
	return end
}

// SinglePulse renders Figure 2: a trigger falling edge followed by one
// output pulse of length T = k·R·C.
func SinglePulse(m Multivibrator, r Ohm) *Waveform {
	w := &Waveform{}
	t := m.Pulse(r, nil)
	w.add("trigger", 0, true)
	w.add("trigger", 1*time.Millisecond, false) // falling edge starts the pulse
	w.add("trigger", 2*time.Millisecond, true)
	w.add("output", 1*time.Millisecond, true)
	w.add("output", 1*time.Millisecond+t, false)
	return w
}

// IDTrain renders Figure 3: the 4-interval waveform (T1..T4) encoding one
// device identifier, produced by the serially chained multivibrators.
func IDTrain(coder PulseCoder, id DeviceID) *Waveform {
	w := &Waveform{}
	at := time.Duration(0)
	level := true
	w.add("output", at, level)
	for _, t := range coder.EncodeID(id) {
		at += t
		level = !level
		w.add("output", at, level)
	}
	return w
}

// ChannelScan renders Figure 5: each channel enabled for its discrete time
// slot, with the shared output line carrying the pulse train of whichever
// peripheral occupies the active channel. The board is inspected for its
// current occupancy.
func ChannelScan(b *ControlBoard) *Waveform {
	w := &Waveform{}
	w.add("start", 0, true)
	w.add("start", TriggerOverhead, false)

	at := TriggerOverhead
	res := b.Identify()
	for _, rd := range res.Readings {
		name := fmt.Sprintf("channel%c EN", 'A'+rd.Channel)
		w.add(name, at, true)
		slotStart := at
		at += ChannelSettle
		if rd.Connected {
			level := true
			w.add("output", at, level)
			for _, t := range rd.Pulses {
				at += t
				level = !level
				w.add("output", at, level)
			}
		} else {
			at += NoPulseTimeout
		}
		w.add(name, at, false)
		_ = slotStart
	}
	return w
}

// ASCII renders the waveform as a fixed-width character diagram with one row
// per signal, suitable for terminal output. Width is the number of columns
// used for the time axis.
func (w *Waveform) ASCII(width int) string {
	if width <= 0 {
		width = 72
	}
	end := w.End()
	if end == 0 {
		return ""
	}
	col := func(at time.Duration) int {
		c := int(int64(at) * int64(width-1) / int64(end))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	var sb strings.Builder
	for _, sig := range w.Signals() {
		var edges []Edge
		for _, e := range w.Edges {
			if e.Signal == sig {
				edges = append(edges, e)
			}
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i].At < edges[j].At })

		row := make([]byte, width)
		level := false
		idx := 0
		for c := 0; c < width; c++ {
			for idx < len(edges) && col(edges[idx].At) <= c {
				level = edges[idx].Level
				idx++
			}
			if level {
				row[c] = '#'
			} else {
				row[c] = '_'
			}
		}
		fmt.Fprintf(&sb, "%-14s |%s|\n", sig, row)
	}
	fmt.Fprintf(&sb, "%-14s  0%*s\n", "", width-1, end.Round(time.Millisecond))
	return sb.String()
}
