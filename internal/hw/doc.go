// Package hw simulates the µPnP hardware identification substrate described
// in Section 3 of the paper: monostable multivibrators that convert passive
// electrical components (four resistors on each peripheral, fixed capacitors
// on the control board) into a train of four timed pulses, which the
// peripheral controller decodes into a 32-bit device-type identifier.
//
// The package models the physics the scheme depends on:
//
//   - pulse length T = k·R·C (Equation 1 of the paper),
//   - component manufacturing tolerance (resistors and capacitors are sold in
//     IEC 60063 "E-series" preferred values with a relative tolerance),
//   - logarithmically spaced decode bins, required because component error is
//     relative — a fixed-width bin scheme would need exponentially growing
//     component values, which is exactly the observation that motivates the
//     paper's 4-short-pulses design over a single long pulse,
//   - the control board's channel time-multiplexing (Figure 5), interrupt
//     driven activation, and per-identification energy cost (Section 6.1).
//
// Everything is deterministic unless a *rand.Rand is supplied for tolerance
// sampling, which keeps tests reproducible.
package hw
