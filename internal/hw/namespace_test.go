package hw

import (
	"testing"
	"testing/quick"
)

func TestStructuredIDRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		id := DeviceID(v)
		return id.Structured().DeviceID() == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMakeStructuredID(t *testing.T) {
	id, err := MakeStructuredID(0x0042, ClassTemperature, 0x01)
	if err != nil {
		t.Fatal(err)
	}
	s := id.Structured()
	if s.Vendor != 0x42 || s.Class != ClassTemperature || s.Product != 1 {
		t.Fatalf("structured = %+v", s)
	}
	if s.IsClassWildcard() {
		t.Fatal("allocated ID must not be a wildcard")
	}
	if s.String() == "" {
		t.Fatal("must render")
	}
}

func TestMakeStructuredIDReservations(t *testing.T) {
	if _, err := MakeStructuredID(0, ClassTemperature, 1); err == nil {
		t.Fatal("vendor 0 is reserved")
	}
	if _, err := MakeStructuredID(0x42, ClassTemperature, 0); err == nil {
		t.Fatal("product 0 is reserved")
	}
	if _, err := MakeStructuredID(0xffff, 0xff, 0xff); err == nil {
		t.Fatal("the all-clients identifier must stay reserved")
	}
}

func TestClassWildcard(t *testing.T) {
	w := ClassWildcard(ClassPressure)
	s := w.Structured()
	if !s.IsClassWildcard() || s.Class != ClassPressure {
		t.Fatalf("wildcard = %+v", s)
	}
	if ClassWildcard(0).Structured().IsClassWildcard() {
		t.Fatal("class 0 has no wildcard")
	}
}

func TestClassNames(t *testing.T) {
	if ClassName(ClassTemperature) != "temperature" {
		t.Fatal("known class must have a name")
	}
	if ClassName(0xEE) == "" {
		t.Fatal("unknown classes must render")
	}
}
