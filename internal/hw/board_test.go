package hw

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func mustPeripheral(t testing.TB, id DeviceID, bus BusKind, rng *rand.Rand) *Peripheral {
	t.Helper()
	p, err := NewPeripheral(PeripheralSpec{ID: id, Bus: bus, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestIdentifySingle(t *testing.T) {
	b := NewControlBoard(BoardConfig{})
	p := mustPeripheral(t, 0xad1cbe01, BusI2C, nil)
	if err := b.Plug(1, p); err != nil {
		t.Fatal(err)
	}
	res := b.Identify()
	if len(res.Readings) != 3 {
		t.Fatalf("want 3 channel readings, got %d", len(res.Readings))
	}
	rd := res.Readings[1]
	if !rd.Connected {
		t.Fatal("channel 1 must be connected")
	}
	if rd.Err != nil {
		t.Fatalf("decode error: %v", rd.Err)
	}
	if rd.ID != 0xad1cbe01 {
		t.Fatalf("decoded %v, want 0xad1cbe01", rd.ID)
	}
	if res.Readings[0].Connected || res.Readings[2].Connected {
		t.Fatal("channels 0 and 2 must be empty")
	}
	if res.Duration < 220*time.Millisecond || res.Duration > 300*time.Millisecond {
		t.Errorf("identification time %v outside the paper's 220-300 ms window", res.Duration)
	}
	if res.Energy < 2.3e-3 || res.Energy > 7.0e-3 {
		t.Errorf("identification energy %.4g J outside the paper's 2.48-6.756 mJ window", float64(res.Energy))
	}
}

func TestIdentifyWithManufacturingTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := NewControlBoard(BoardConfig{Rng: rng, MeasurementJitter: 0.0005})
	ids := []DeviceID{0x00000001, 0xad1cbe01, 0xed3f0ac1}
	for ch, id := range ids {
		if err := b.Plug(ch, mustPeripheral(t, id, BusADC, rng)); err != nil {
			t.Fatal(err)
		}
	}
	res := b.Identify()
	for ch, rd := range res.Readings {
		if rd.Err != nil {
			t.Fatalf("channel %d decode error: %v", ch, rd.Err)
		}
		if rd.ID != ids[ch] {
			t.Fatalf("channel %d decoded %v, want %v", ch, rd.ID, ids[ch])
		}
	}
}

func TestIdentifyPropertyUnderTolerance(t *testing.T) {
	// Any identifier must survive encode→manufacture→measure→decode as long
	// as the component tolerances stay within the coder guard band.
	rng := rand.New(rand.NewSource(7))
	f := func(v uint32) bool {
		id := DeviceID(v)
		if id.Reserved() {
			return true
		}
		b := NewControlBoard(BoardConfig{Channels: 1, Rng: rng})
		p, err := NewPeripheral(PeripheralSpec{ID: id, Bus: BusADC, Rng: rng})
		if err != nil {
			return false
		}
		if err := b.Plug(0, p); err != nil {
			return false
		}
		res := b.Identify()
		rd := res.Readings[0]
		return rd.Err == nil && rd.ID == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentifyFailsWithExcessiveTolerance(t *testing.T) {
	// Components far outside the guard band must (at least sometimes)
	// produce decode errors or wrong identifiers. This documents the scheme's
	// sensitivity to component precision.
	rng := rand.New(rand.NewSource(3))
	wrong := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		b := NewControlBoard(BoardConfig{Channels: 1, Rng: rng})
		p, err := NewPeripheral(PeripheralSpec{ID: 0x55aa1234, Bus: BusADC, Tolerance: 0.05, Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Plug(0, p); err != nil {
			t.Fatal(err)
		}
		rd := b.Identify().Readings[0]
		if rd.Err != nil || rd.ID != 0x55aa1234 {
			wrong++
		}
	}
	if wrong == 0 {
		t.Fatal("±5% resistors should break identification at least sometimes")
	}
}

func TestInterrupts(t *testing.T) {
	b := NewControlBoard(BoardConfig{})
	var got []Interrupt
	b.OnInterrupt(func(i Interrupt) { got = append(got, i) })

	p := mustPeripheral(t, 0x01020304, BusUART, nil)
	if err := b.Plug(2, p); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Unplug(2); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 interrupts, got %d", len(got))
	}
	if !got[0].Attached || got[0].Channel != 2 {
		t.Fatalf("first interrupt = %+v, want attach on channel 2", got[0])
	}
	if got[1].Attached || got[1].Channel != 2 {
		t.Fatalf("second interrupt = %+v, want detach on channel 2", got[1])
	}
}

func TestPlugErrors(t *testing.T) {
	b := NewControlBoard(BoardConfig{})
	p := mustPeripheral(t, 0x01020304, BusUART, nil)
	if err := b.Plug(5, p); err == nil {
		t.Error("plugging out-of-range channel must fail")
	}
	if err := b.Plug(-1, p); err == nil {
		t.Error("plugging negative channel must fail")
	}
	if err := b.Plug(0, p); err != nil {
		t.Fatal(err)
	}
	if err := b.Plug(0, p); err == nil {
		t.Error("plugging occupied channel must fail")
	}
	if _, err := b.Unplug(1); err == nil {
		t.Error("unplugging empty channel must fail")
	}
	if _, err := b.Unplug(9); err == nil {
		t.Error("unplugging out-of-range channel must fail")
	}
}

func TestReservedPeripheralRejected(t *testing.T) {
	if _, err := NewPeripheral(PeripheralSpec{ID: DeviceIDAllClients, Bus: BusADC}); err == nil {
		t.Fatal("reserved ID must be rejected")
	}
	if _, err := NewPeripheral(PeripheralSpec{ID: DeviceIDAllPeripherals, Bus: BusADC}); err == nil {
		t.Fatal("reserved ID must be rejected")
	}
}

func TestBoardStats(t *testing.T) {
	b := NewControlBoard(BoardConfig{})
	p := mustPeripheral(t, 0x01020304, BusSPI, nil)
	if err := b.Plug(0, p); err != nil {
		t.Fatal(err)
	}
	b.Identify()
	b.Identify()
	st := b.Stats()
	if st.Scans != 2 {
		t.Errorf("scans = %d, want 2", st.Scans)
	}
	if st.Interrupts != 1 {
		t.Errorf("interrupts = %d, want 1", st.Interrupts)
	}
	if st.EnergyTotal <= 0 || st.ActiveTime <= 0 {
		t.Error("energy and active time must accumulate")
	}
}

func TestWorstCaseScanTime(t *testing.T) {
	got := WorstCaseScanTime(BoardConfig{}, 1)
	if got < 295*time.Millisecond || got > 305*time.Millisecond {
		t.Fatalf("worst case with 1 connected = %v, want ~300 ms", got)
	}
}

func TestEnergyScalesWithID(t *testing.T) {
	cheap := NewControlBoard(BoardConfig{Channels: 1})
	dear := NewControlBoard(BoardConfig{Channels: 1})
	if err := cheap.Plug(0, mustPeripheral(t, 0x00000000+1, BusADC, nil)); err != nil {
		t.Fatal(err)
	}
	if err := dear.Plug(0, mustPeripheral(t, 0xfffffffe, BusADC, nil)); err != nil {
		t.Fatal(err)
	}
	e1 := cheap.Identify().Energy
	e2 := dear.Identify().Energy
	if e1 >= e2 {
		t.Fatalf("large identifiers must cost more energy: %v vs %v", e1, e2)
	}
}
