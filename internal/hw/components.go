package hw

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Ohm and Farad express component values in SI units.
type (
	// Ohm is an electrical resistance in ohms.
	Ohm float64
	// Farad is an electrical capacitance in farads.
	Farad float64
)

// Resistor models a physical resistor: a nominal value plus the worst-case
// relative manufacturing tolerance (e.g. 0.005 for a ±0.5% part).
type Resistor struct {
	Nominal   Ohm
	Tolerance float64
}

// Capacitor models a physical capacitor with nominal value and tolerance.
type Capacitor struct {
	Nominal   Farad
	Tolerance float64
}

// Actual returns the as-manufactured resistance. When rng is non-nil the
// deviation is drawn uniformly from [-Tolerance, +Tolerance]; a nil rng
// returns the nominal value, which keeps unit tests deterministic.
func (r Resistor) Actual(rng *rand.Rand) Ohm {
	return Ohm(applyTolerance(float64(r.Nominal), r.Tolerance, rng))
}

// Actual returns the as-manufactured capacitance, sampled like
// Resistor.Actual.
func (c Capacitor) Actual(rng *rand.Rand) Farad {
	return Farad(applyTolerance(float64(c.Nominal), c.Tolerance, rng))
}

func applyTolerance(nominal, tol float64, rng *rand.Rand) float64 {
	if rng == nil || tol == 0 {
		return nominal
	}
	dev := (rng.Float64()*2 - 1) * tol
	return nominal * (1 + dev)
}

func (r Resistor) String() string {
	return fmt.Sprintf("%s ±%.2g%%", FormatOhm(r.Nominal), r.Tolerance*100)
}

// FormatOhm renders a resistance using engineering notation (e.g. "47kΩ").
func FormatOhm(v Ohm) string {
	f := float64(v)
	switch {
	case f >= 1e6:
		return trimZero(f/1e6) + "MΩ"
	case f >= 1e3:
		return trimZero(f/1e3) + "kΩ"
	default:
		return trimZero(f) + "Ω"
	}
}

func trimZero(f float64) string {
	s := fmt.Sprintf("%.3f", f)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// Multivibrator models a monostable multivibrator (one of the four timers on
// the µPnP control board). When triggered it emits a single pulse whose
// length is T = k·R·C where R is supplied by the connected peripheral and C
// is the board's fixed capacitor (Equation 1).
type Multivibrator struct {
	// K is the circuit constant k of Equation 1. For the canonical 555-style
	// monostable circuit k ≈ 1.1.
	K float64
	// C is the board-side timing capacitor.
	C Capacitor
}

// Pulse returns the pulse duration produced for resistance r. Component
// tolerance for the board capacitor is sampled from rng (nil ⇒ nominal).
func (m Multivibrator) Pulse(r Ohm, rng *rand.Rand) time.Duration {
	c := m.C.Actual(rng)
	secs := m.K * float64(r) * float64(c)
	return time.Duration(math.Round(secs * float64(time.Second)))
}

// ResistorFor inverts Equation 1: it returns the nominal resistance that
// produces a pulse of duration t through this multivibrator.
func (m Multivibrator) ResistorFor(t time.Duration) Ohm {
	secs := t.Seconds()
	return Ohm(secs / (m.K * float64(m.C.Nominal)))
}
