package hw

import "fmt"

// BusKind names the hardware interconnect a peripheral communicates over
// once it has been identified. Following Table 1, the µPnP connector's
// communication pins (pin 10–12) are multiplexed to one of these buses based
// on the detected device identifier.
type BusKind uint8

// Interconnects encapsulated by the µPnP bus.
const (
	BusADC BusKind = iota
	BusI2C
	BusSPI
	BusUART
)

func (b BusKind) String() string {
	switch b {
	case BusADC:
		return "ADC"
	case BusI2C:
		return "I2C"
	case BusSPI:
		return "SPI"
	case BusUART:
		return "UART"
	default:
		return fmt.Sprintf("BusKind(%d)", uint8(b))
	}
}

// PinAssignment describes what a connector communication pin carries for a
// given bus (Table 1). "N/C" means not connected.
type PinAssignment struct {
	Pin10, Pin11, Pin12 string
}

// Pinout returns the Table 1 pin assignment for the bus.
func (b BusKind) Pinout() PinAssignment {
	switch b {
	case BusADC:
		return PinAssignment{"Analog Signal", "N/C", "N/C"}
	case BusI2C:
		return PinAssignment{"SDA", "SCL", "N/C"}
	case BusSPI:
		return PinAssignment{"MOSI", "MISO", "SCK"}
	case BusUART:
		return PinAssignment{"TX", "RX", "N/C"}
	default:
		return PinAssignment{"N/C", "N/C", "N/C"}
	}
}

// Connector models the 19-pin mini-HDMI connector of the prototype: pins 1–8
// carry the identification circuit (four resistor pairs, Figure 4), pin INT
// signals attach/detach, pins 10–12 are the multiplexed communication pins.
type Connector struct {
	// IdentPins reports the resistor wired across each identification pin
	// pair: IdentPins[0] is R1 (pins 1–2) … IdentPins[3] is R4 (pins 7–8).
	IdentPins [4]Resistor
	// Bus selects the multiplexing of the communication pins.
	Bus BusKind
}
