package hw

import (
	"fmt"
	"strings"
	"time"
)

// ResistorChoice is one identification resistor realised from purchasable
// E-series parts: either a single part (B == 0) or two parts in series.
type ResistorChoice struct {
	Target Ohm // exact resistance demanded by the identifier byte
	A, B   Ohm // chosen preferred values (series-connected when B > 0)
	RelErr float64
}

// Achieved returns the realised nominal resistance A+B.
func (rc ResistorChoice) Achieved() Ohm { return rc.A + rc.B }

// ResistorSet is the bill of materials the µPnP address-space tool hands to
// a peripheral designer: the four resistors encoding an assigned identifier.
type ResistorSet struct {
	ID      DeviceID
	Series  ESeries
	Choices [4]ResistorChoice
	// DecodesOK reports that the realised values (at nominal) decode back to
	// ID through the default board electronics.
	DecodesOK bool
}

// GenerateResistorSet reproduces the paper's online tool (Section 3.3): given
// an assigned device identifier it computes the four resistor values
// (Figure 4) and approximates each with purchasable series parts, verifying
// that the realised set still decodes to the same identifier.
func GenerateResistorSet(id DeviceID, series ESeries) (*ResistorSet, error) {
	if id.Reserved() {
		return nil, fmt.Errorf("hw: identifier %v is reserved", id)
	}
	coder := DefaultPulseCoder
	vib := DefaultMultivibrator

	set := &ResistorSet{ID: id, Series: series}
	var pulses [4]Ohm = coder.Resistors(id, vib)
	var realised [4]time.Duration
	for i, target := range pulses {
		a, b, relErr := series.SeriesPair(target)
		set.Choices[i] = ResistorChoice{Target: target, A: a, B: b, RelErr: relErr}
		realised[i] = vib.Pulse(set.Choices[i].Achieved(), nil)
	}
	got, err := coder.DecodeID(realised)
	set.DecodesOK = err == nil && got == id
	return set, nil
}

// BOM renders the resistor set as a human-readable bill of materials.
func (s *ResistorSet) BOM() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "device ID %v  (series E%d, decode check: %v)\n", s.ID, int(s.Series), s.DecodesOK)
	for i, c := range s.Choices {
		fmt.Fprintf(&sb, "  R%d: target %-10s -> ", i+1, FormatOhm(c.Target))
		if c.B > 0 {
			fmt.Fprintf(&sb, "%s + %s in series", FormatOhm(c.A), FormatOhm(c.B))
		} else {
			fmt.Fprintf(&sb, "%s", FormatOhm(c.A))
		}
		fmt.Fprintf(&sb, " (err %.3f%%)\n", c.RelErr*100)
	}
	return sb.String()
}
