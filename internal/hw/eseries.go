package hw

import (
	"math"
	"sort"
)

// ESeries identifies an IEC 60063 preferred-value series for passive
// components. The series determines both the set of purchasable nominal
// values and the customary tolerance of parts sold in that series.
type ESeries int

// Supported IEC 60063 series.
const (
	E12 ESeries = 12 // ±10% parts
	E24 ESeries = 24 // ±5% parts
	E96 ESeries = 96 // ±1% parts (0.5% variants are common)
)

// Tolerance returns the customary relative tolerance of components sold in
// the series.
func (s ESeries) Tolerance() float64 {
	switch s {
	case E12:
		return 0.10
	case E24:
		return 0.05
	default:
		return 0.01
	}
}

// e12 and e24 are the standardised mantissas; E96 values are generated from
// the round(10^(i/96), 2 digits) rule with the historical exceptions baked in
// by IEC 60063.
var (
	e12Mantissas = []float64{1.0, 1.2, 1.5, 1.8, 2.2, 2.7, 3.3, 3.9, 4.7, 5.6, 6.8, 8.2}
	e24Mantissas = []float64{
		1.0, 1.1, 1.2, 1.3, 1.5, 1.6, 1.8, 2.0, 2.2, 2.4, 2.7, 3.0,
		3.3, 3.6, 3.9, 4.3, 4.7, 5.1, 5.6, 6.2, 6.8, 7.5, 8.2, 9.1,
	}
	// e96Mantissas is the standardised IEC 60063 E96 table (the published
	// values deviate from the pure geometric progression in a handful of
	// places, so the table is spelled out rather than generated).
	e96Table = []float64{
		1.00, 1.02, 1.05, 1.07, 1.10, 1.13, 1.15, 1.18, 1.21, 1.24, 1.27, 1.30,
		1.33, 1.37, 1.40, 1.43, 1.47, 1.50, 1.54, 1.58, 1.62, 1.65, 1.69, 1.74,
		1.78, 1.82, 1.87, 1.91, 1.96, 2.00, 2.05, 2.10, 2.15, 2.21, 2.26, 2.32,
		2.37, 2.43, 2.49, 2.55, 2.61, 2.67, 2.74, 2.80, 2.87, 2.94, 3.01, 3.09,
		3.16, 3.24, 3.32, 3.40, 3.48, 3.57, 3.65, 3.74, 3.83, 3.92, 4.02, 4.12,
		4.22, 4.32, 4.42, 4.53, 4.64, 4.75, 4.87, 4.99, 5.11, 5.23, 5.36, 5.49,
		5.62, 5.76, 5.90, 6.04, 6.19, 6.34, 6.49, 6.65, 6.81, 6.98, 7.15, 7.32,
		7.50, 7.68, 7.87, 8.06, 8.25, 8.45, 8.66, 8.87, 9.09, 9.31, 9.53, 9.76,
	}
)

func e96Mantissas() []float64 {
	return append([]float64(nil), e96Table...)
}

// Mantissas returns the per-decade preferred mantissa values of the series
// in increasing order.
func (s ESeries) Mantissas() []float64 {
	switch s {
	case E12:
		return append([]float64(nil), e12Mantissas...)
	case E24:
		return append([]float64(nil), e24Mantissas...)
	default:
		return e96Mantissas()
	}
}

// Nearest returns the purchasable value from the series closest (in relative
// error) to target. Decades from 1Ω through 10MΩ are considered.
func (s ESeries) Nearest(target Ohm) Ohm {
	if target <= 0 {
		return 0
	}
	mant := s.Mantissas()
	best, bestErr := Ohm(0), math.Inf(1)
	for decade := 1.0; decade <= 1e7; decade *= 10 {
		for _, m := range mant {
			v := m * decade
			relErr := math.Abs(v-float64(target)) / float64(target)
			if relErr < bestErr {
				bestErr = relErr
				best = Ohm(v)
			}
		}
	}
	return best
}

// SeriesPair approximates target with two series-connected resistors drawn
// from the E-series. It returns the pair (second may be zero if a single part
// is close enough) and the achieved relative error. This is what the paper's
// online resistor-generation tool must do when an assigned device identifier
// demands a resistance that is not a preferred value.
func (s ESeries) SeriesPair(target Ohm) (a, b Ohm, relErr float64) {
	single := s.Nearest(target)
	bestA, bestB := single, Ohm(0)
	bestErr := math.Abs(float64(single-target)) / float64(target)

	mant := s.Mantissas()
	var candidates []Ohm
	for decade := 1.0; decade <= 1e7; decade *= 10 {
		for _, m := range mant {
			candidates = append(candidates, Ohm(m*decade))
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

	for _, ca := range candidates {
		if ca >= target {
			break
		}
		rem := target - ca
		cb := s.Nearest(rem)
		err := math.Abs(float64(ca+cb-target)) / float64(target)
		if err < bestErr {
			bestErr, bestA, bestB = err, ca, cb
		}
	}
	return bestA, bestB, bestErr
}
