package hw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestDeviceIDBytesRoundTrip(t *testing.T) {
	ids := []DeviceID{0, 1, 0xad1cbe01, 0xed3f0ac1, 0xffffffff, 0x00ff00ff}
	for _, id := range ids {
		if got := DeviceIDFromBytes(id.Bytes()); got != id {
			t.Errorf("round trip %v: got %v", id, got)
		}
	}
}

func TestDeviceIDBytesRoundTripProperty(t *testing.T) {
	f := func(v uint32) bool {
		id := DeviceID(v)
		return DeviceIDFromBytes(id.Bytes()) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReservedIDs(t *testing.T) {
	if !DeviceIDAllPeripherals.Reserved() || !DeviceIDAllClients.Reserved() {
		t.Fatal("reserved IDs must report Reserved()")
	}
	if DeviceID(0xad1cbe01).Reserved() {
		t.Fatal("ordinary ID must not be reserved")
	}
}

func TestPulseCoderNominalRoundTrip(t *testing.T) {
	pc := DefaultPulseCoder
	for b := 0; b < 256; b++ {
		d := pc.Duration(byte(b))
		got, err := pc.Byte(d)
		if err != nil {
			t.Fatalf("byte %d: %v", b, err)
		}
		if got != byte(b) {
			t.Fatalf("byte %d decoded as %d (duration %v)", b, got, d)
		}
	}
}

func TestPulseCoderMonotone(t *testing.T) {
	pc := DefaultPulseCoder
	prev := time.Duration(0)
	for b := 0; b < 256; b++ {
		d := pc.Duration(byte(b))
		if d <= prev {
			t.Fatalf("durations must be strictly increasing: byte %d gives %v after %v", b, d, prev)
		}
		prev = d
	}
}

func TestPulseCoderGuardBand(t *testing.T) {
	pc := DefaultPulseCoder
	guard := pc.GuardBand()
	if guard <= 0 {
		t.Fatal("guard band must be positive")
	}
	// A pulse perturbed by strictly less than half the guard band must still
	// decode to the same byte.
	for _, b := range []byte{0, 1, 7, 100, 200, 255} {
		d := pc.Duration(b)
		for _, dev := range []float64{-guard * 0.45, guard * 0.45} {
			perturbed := time.Duration(float64(d) * (1 + dev))
			got, err := pc.Byte(perturbed)
			if err != nil {
				t.Fatalf("byte %d dev %.4f: %v", b, dev, err)
			}
			if got != b {
				t.Errorf("byte %d at deviation %.4f decoded as %d", b, dev, got)
			}
		}
	}
}

func TestPulseCoderRejectsOutOfRange(t *testing.T) {
	pc := DefaultPulseCoder
	if _, err := pc.Byte(0); err == nil {
		t.Error("zero-length pulse must be rejected")
	}
	if _, err := pc.Byte(-time.Millisecond); err == nil {
		t.Error("negative pulse must be rejected")
	}
	if _, err := pc.Byte(pc.TMax() * 3); err == nil {
		t.Error("pulse far beyond TMax must be rejected")
	}
	if _, err := pc.Byte(pc.TMin / 3); err == nil {
		t.Error("pulse far below TMin must be rejected")
	}
}

func TestEncodeDecodeIDProperty(t *testing.T) {
	pc := DefaultPulseCoder
	f := func(v uint32) bool {
		id := DeviceID(v)
		got, err := pc.DecodeID(pc.EncodeID(id))
		return err == nil && got == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainDurationWindow(t *testing.T) {
	pc := DefaultPulseCoder
	min := pc.TrainDuration(0x00000000)
	max := pc.TrainDuration(0xffffffff)
	if min >= max {
		t.Fatalf("min train %v must be below max train %v", min, max)
	}
	// Calibration: with the default 3-channel board and one peripheral the
	// total process time must land in the paper's 220–300 ms window.
	base := TriggerOverhead + 3*ChannelSettle + 2*NoPulseTimeout
	lo, hi := base+min, base+max
	if lo < 215*time.Millisecond || lo > 225*time.Millisecond {
		t.Errorf("best-case process time %v outside ~220 ms", lo)
	}
	if hi < 295*time.Millisecond || hi > 305*time.Millisecond {
		t.Errorf("worst-case process time %v outside ~300 ms", hi)
	}
}

func TestResistorsInvertPulses(t *testing.T) {
	pc := DefaultPulseCoder
	m := DefaultMultivibrator
	id := DeviceID(0xad1cbe01)
	rs := pc.Resistors(id, m)
	var pulses [4]time.Duration
	for i, r := range rs {
		pulses[i] = m.Pulse(r, nil)
	}
	got, err := pc.DecodeID(pulses)
	if err != nil {
		t.Fatal(err)
	}
	if got != id {
		t.Fatalf("resistor round trip: got %v want %v", got, id)
	}
}

func TestSinglePulseCoderExponentialBlowup(t *testing.T) {
	// The ablation behind the paper's 4-short-pulses design choice: a single
	// 32-bit pulse with the same guard band has an astronomically long worst
	// case, while the 4x8-bit train stays under 100 ms.
	four := DefaultPulseCoder.TrainDuration(0xffffffff)
	single := SinglePulseCoder{TMin: DefaultPulseCoder.TMin, Ratio: DefaultPulseCoder.Ratio, Bits: 32}
	if single.WorstCase() < 1000*time.Hour {
		t.Fatalf("single 32-bit pulse worst case %v should be astronomically long", single.WorstCase())
	}
	if four > 100*time.Millisecond {
		t.Fatalf("4-pulse train worst case %v should stay under 100 ms", four)
	}
	// Even 16-bit single-pulse encoding is already impractical.
	s16 := SinglePulseCoder{TMin: DefaultPulseCoder.TMin, Ratio: DefaultPulseCoder.Ratio, Bits: 16}
	if s16.WorstCase() < time.Hour {
		t.Fatalf("16-bit single pulse worst case %v should exceed an hour", s16.WorstCase())
	}
}

func TestMultivibratorEquation(t *testing.T) {
	m := Multivibrator{K: 1.1, C: Capacitor{Nominal: 100e-9}}
	// T = 1.1 * 10k * 100n = 1.1 ms
	got := m.Pulse(10_000, nil)
	want := 1100 * time.Microsecond
	if d := math.Abs(float64(got - want)); d > float64(time.Microsecond) {
		t.Fatalf("pulse = %v, want %v", got, want)
	}
	r := m.ResistorFor(want)
	if math.Abs(float64(r)-10_000) > 1 {
		t.Fatalf("ResistorFor inverse = %v, want 10k", r)
	}
}

func TestToleranceSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := Resistor{Nominal: 10_000, Tolerance: 0.01}
	for i := 0; i < 100; i++ {
		a := float64(r.Actual(rng))
		if a < 9_900-1e-9 || a > 10_100+1e-9 {
			t.Fatalf("sample %v outside ±1%% of 10k", a)
		}
	}
	if r.Actual(nil) != 10_000 {
		t.Fatal("nil rng must return nominal")
	}
}
