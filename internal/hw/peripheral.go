package hw

import (
	"fmt"
	"math/rand"
)

// Peripheral is a pluggable µPnP peripheral board: four identification
// resistors encoding its device-type identifier, plus the interconnect it
// speaks once identified. The resistors are the ONLY active ingredient of
// the identification scheme on the peripheral side (Figure 4) — this is what
// keeps the per-peripheral cost below one US cent.
type Peripheral struct {
	// ID is the intended (assigned) identifier from the global address space.
	ID DeviceID
	// Bus is the interconnect the peripheral communicates over.
	Bus BusKind
	// Resistors are the as-designed nominal identification resistors R1..R4.
	Resistors [4]Resistor
	// actual holds the as-manufactured resistances, fixed at build time.
	actual [4]Ohm
}

// PeripheralSpec configures peripheral manufacturing.
type PeripheralSpec struct {
	ID  DeviceID
	Bus BusKind
	// Tolerance is the relative tolerance of the identification resistors;
	// 0 uses the DefaultResistorTolerance.
	Tolerance float64
	// Coder and Vibrator describe the board-side electronics the resistors
	// are designed against; zero values use the package defaults.
	Coder    PulseCoder
	Vibrator Multivibrator
	// Rng, when non-nil, samples manufacturing deviation for each resistor.
	Rng *rand.Rand
}

// DefaultResistorTolerance is the tolerance of the precision resistors used
// on µPnP peripheral boards. It must stay below the coder guard band
// (DefaultPulseCoder.GuardBand() ≈ 0.52%) for identification to be reliable.
const DefaultResistorTolerance = 0.0025

// DefaultMultivibrator is the board-side timing circuit of the prototype:
// a 555-style monostable (k = 1.1) with a 100 nF C0G/NP0 timing capacitor.
// The effective capacitor tolerance is ±0.1%: the board trims k·C per unit
// during manufacture (one reference measurement suffices), so only drift and
// temperature coefficient remain. This keeps the total timing-error budget
// (resistor ±0.25% + capacitor ±0.1% + jitter + quantisation) inside the
// coder guard band of ≈0.52%.
var DefaultMultivibrator = Multivibrator{K: 1.1, C: Capacitor{Nominal: 100e-9, Tolerance: 0.001}}

// NewPeripheral manufactures a peripheral from its spec: it computes the
// four nominal resistor values that encode the identifier and fixes their
// as-manufactured actual values.
func NewPeripheral(spec PeripheralSpec) (*Peripheral, error) {
	if spec.ID.Reserved() {
		return nil, fmt.Errorf("hw: device ID %v is reserved and cannot be assigned", spec.ID)
	}
	coder := spec.Coder
	if coder.TMin == 0 {
		coder = DefaultPulseCoder
	}
	vib := spec.Vibrator
	if vib.K == 0 {
		vib = DefaultMultivibrator
	}
	tol := spec.Tolerance
	if tol == 0 {
		tol = DefaultResistorTolerance
	}

	p := &Peripheral{ID: spec.ID, Bus: spec.Bus}
	for i, r := range coder.Resistors(spec.ID, vib) {
		p.Resistors[i] = Resistor{Nominal: r, Tolerance: tol}
		p.actual[i] = p.Resistors[i].Actual(spec.Rng)
	}
	return p, nil
}

// ActualResistances exposes the as-manufactured resistances (for tests and
// for the waveform renderer).
func (p *Peripheral) ActualResistances() [4]Ohm { return p.actual }

// Connector returns the peripheral's connector wiring.
func (p *Peripheral) Connector() Connector {
	return Connector{IdentPins: p.Resistors, Bus: p.Bus}
}
