package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestESeriesMantissaCounts(t *testing.T) {
	if n := len(E12.Mantissas()); n != 12 {
		t.Errorf("E12 has %d mantissas", n)
	}
	if n := len(E24.Mantissas()); n != 24 {
		t.Errorf("E24 has %d mantissas", n)
	}
	if n := len(E96.Mantissas()); n != 96 {
		t.Errorf("E96 has %d mantissas", n)
	}
}

func TestE96KnownValues(t *testing.T) {
	m := E96.Mantissas()
	// Spot-check canonical E96 values including IEC exceptions.
	want := map[int]float64{0: 1.00, 10: 1.27, 24: 1.78, 48: 3.16, 95: 9.76}
	for i, v := range want {
		if math.Abs(m[i]-v) > 1e-9 {
			t.Errorf("E96[%d] = %v, want %v", i, m[i], v)
		}
	}
}

func TestMantissasIncreasing(t *testing.T) {
	for _, s := range []ESeries{E12, E24, E96} {
		m := s.Mantissas()
		for i := 1; i < len(m); i++ {
			if m[i] <= m[i-1] {
				t.Errorf("E%d mantissas not increasing at %d: %v then %v", int(s), i, m[i-1], m[i])
			}
		}
		if m[0] != 1.0 {
			t.Errorf("E%d must start at 1.0", int(s))
		}
		if m[len(m)-1] >= 10 {
			t.Errorf("E%d mantissas must stay below 10", int(s))
		}
	}
}

func TestNearestWithinHalfStep(t *testing.T) {
	// Nearest E96 value is always within half the widest series gap
	// (2.15 -> 2.21 is 2.79%) of any target in range.
	f := func(raw uint32) bool {
		target := Ohm(100 + float64(raw%10_000_000))
		got := E96.Nearest(target)
		relErr := math.Abs(float64(got-target)) / float64(target)
		return relErr < 0.015
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesPairBeatsSingle(t *testing.T) {
	// An awkward target: series pair should get closer than a single part.
	target := Ohm(123_456)
	single := E96.Nearest(target)
	singleErr := math.Abs(float64(single-target)) / float64(target)
	_, _, pairErr := E96.SeriesPair(target)
	if pairErr > singleErr {
		t.Fatalf("pair err %.5f worse than single err %.5f", pairErr, singleErr)
	}
	if pairErr > 0.005 {
		t.Fatalf("pair err %.5f too large for E96", pairErr)
	}
}

func TestGenerateResistorSet(t *testing.T) {
	set, err := GenerateResistorSet(0xed3f0ac1, E96)
	if err != nil {
		t.Fatal(err)
	}
	if !set.DecodesOK {
		t.Fatalf("realised resistor set must decode back to the identifier:\n%s", set.BOM())
	}
	for i, c := range set.Choices {
		if c.RelErr > DefaultPulseCoder.GuardBand() {
			t.Errorf("R%d realised error %.4f%% exceeds guard band", i+1, c.RelErr*100)
		}
	}
	if set.BOM() == "" {
		t.Error("BOM must render")
	}
}

func TestGenerateResistorSetRejectsReserved(t *testing.T) {
	if _, err := GenerateResistorSet(DeviceIDAllClients, E96); err == nil {
		t.Fatal("reserved ID must be rejected")
	}
}

func TestGenerateResistorSetPropertyDecodes(t *testing.T) {
	f := func(v uint32) bool {
		id := DeviceID(v)
		if id.Reserved() {
			return true
		}
		set, err := GenerateResistorSet(id, E96)
		return err == nil && set.DecodesOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatOhm(t *testing.T) {
	cases := map[Ohm]string{
		470:       "470Ω",
		4_700:     "4.7kΩ",
		47_000:    "47kΩ",
		4_700_000: "4.7MΩ",
	}
	for in, want := range cases {
		if got := FormatOhm(in); got != want {
			t.Errorf("FormatOhm(%v) = %q, want %q", float64(in), got, want)
		}
	}
}

func TestPinouts(t *testing.T) {
	if p := BusSPI.Pinout(); p.Pin12 != "SCK" {
		t.Errorf("SPI pin12 = %q, want SCK", p.Pin12)
	}
	if p := BusADC.Pinout(); p.Pin11 != "N/C" || p.Pin12 != "N/C" {
		t.Errorf("ADC pins 11/12 must be N/C, got %+v", p)
	}
	if p := BusUART.Pinout(); p.Pin10 != "TX" || p.Pin11 != "RX" {
		t.Errorf("UART pinout wrong: %+v", p)
	}
	if p := BusI2C.Pinout(); p.Pin10 != "SDA" || p.Pin11 != "SCL" {
		t.Errorf("I2C pinout wrong: %+v", p)
	}
	if BusUART.String() != "UART" || BusKind(9).String() == "" {
		t.Error("BusKind.String must cover all values")
	}
}

func TestWaveforms(t *testing.T) {
	w := SinglePulse(DefaultMultivibrator, 100_000)
	if len(w.Edges) == 0 || w.End() == 0 {
		t.Fatal("single pulse waveform must have edges")
	}
	w = IDTrain(DefaultPulseCoder, 0xad1cbe01)
	// 4 intervals -> 5 output edges.
	if len(w.Edges) != 5 {
		t.Fatalf("ID train edges = %d, want 5", len(w.Edges))
	}

	b := NewControlBoard(BoardConfig{})
	p, _ := NewPeripheral(PeripheralSpec{ID: 0xad1cbe01, Bus: BusADC})
	if err := b.Plug(0, p); err != nil {
		t.Fatal(err)
	}
	w = ChannelScan(b)
	if len(w.Signals()) < 4 { // start + 3 channel enables (+output)
		t.Fatalf("channel scan signals = %v", w.Signals())
	}
	art := w.ASCII(64)
	if art == "" {
		t.Fatal("ASCII rendering must produce output")
	}
}
