// Package catalog implements a TTL-leased registry of the Things and
// peripherals a µPnP deployment currently serves — the registry half of the
// gateway+catalog pair (patchwork-toolkit style) that turns the SDK's advert
// flow into a queryable device directory.
//
// Entries are fed from live advertisements (Client.AddAdvertHook → Observe):
// each advert upserts the {Thing, peripheral} entry and refreshes its lease.
// Things advertise on plug-in and in discovery replies — there is no
// periodic keep-alive — so a deployment-facing refresher (the gateway issues
// periodic wildcard discoveries) keeps leases of live peripherals fresh,
// while an unplugged peripheral simply stops appearing in replies and its
// lease runs out: a sweep then removes it, and hot-unplug disappears from
// the catalog without anyone polling the Thing.
//
// Time is virtual time (micropnp.Deployment.Now): leases expire on the
// deployment's clock in both runtime modes, so virtual-mode tests are
// deterministic and realtime TTLs scale with WithTimeScale. The sweep
// goroutine ticks on the wall clock but evaluates leases against the
// virtual clock.
//
// One catalog can front a whole fleet: AddFeed registers one advert source
// per member deployment, each with its own virtual clock, and every entry's
// lease lives and expires on its owning feed's clock (Entry.Feed) — the
// members' independent timelines never cross-contaminate TTLs.
//
// The catalog is safe for concurrent use: reads take an RWMutex snapshot,
// listings are paged and deterministically ordered, and hit/miss/expiry
// counters are atomic.
package catalog

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"micropnp"
)

// DefaultTTL is the lease duration when Config.TTL is zero: long enough to
// span several gateway refresh rounds, short enough that an unplugged
// peripheral vanishes promptly.
const DefaultTTL = 30 * time.Second

// Entry is one catalogued peripheral on one Thing.
type Entry struct {
	// Thing is the serving Thing's unicast address.
	Thing netip.Addr
	// Device is the peripheral type.
	Device micropnp.DeviceID
	// Name is the Thing's advertised human-readable name ("" when never
	// advertised).
	Name string
	// Units describes the peripheral's values ("" when never advertised).
	Units string
	// Channel is the control-board channel serving the peripheral (-1 when
	// not advertised).
	Channel int
	// FirstSeen/LastSeen are the virtual times of the first and most recent
	// advert for this entry.
	FirstSeen time.Duration
	LastSeen  time.Duration
	// Expires is the lease deadline (virtual time): the entry is dropped by
	// the first sweep after this instant unless an advert refreshes it.
	Expires time.Duration
	// Solicited reports whether the most recent advert was a discovery
	// reply (false: an unsolicited plug-in advertisement).
	Solicited bool
	// Feed is the advert source that owns this entry's lease clock: 0 is
	// the catalog's own Config.Now, higher indices are AddFeed registrations
	// (one per fleet member when the catalog fronts a federation). All the
	// entry's virtual times — FirstSeen, LastSeen, Expires — are instants on
	// that feed's clock.
	Feed int
}

// Key identifies an entry.
type Key struct {
	Thing  netip.Addr
	Device micropnp.DeviceID
}

// Stats is a snapshot of the catalog's counters.
type Stats struct {
	// Size is the number of live entries.
	Size int
	// Things is the number of distinct Things with at least one live entry.
	Things int
	// Observed counts adverts absorbed (upserts + refreshes).
	Observed uint64
	// Hits/Misses count Get and List lookups that did/did not find entries.
	Hits   uint64
	Misses uint64
	// Expired counts entries dropped by sweeps (lease ran out).
	Expired uint64
	// Sweeps counts sweep passes.
	Sweeps uint64
}

// Config configures a catalog.
type Config struct {
	// TTL is the lease duration in virtual time (0 = DefaultTTL). An entry
	// not refreshed by an advert within TTL is removed by the next sweep.
	TTL time.Duration
	// Now is the virtual clock source, normally micropnp.Deployment.Now.
	Now func() time.Duration
}

// Catalog is the lease-based registry. Create with New.
type Catalog struct {
	ttl time.Duration

	// feeds holds one virtual clock per advert source; feed 0 is Config.Now
	// and AddFeed appends the rest. Append-only under feedMu, so feedNow
	// takes only a read lock on the hot observe path.
	feedMu sync.RWMutex
	feeds  []func() time.Duration

	mu      sync.RWMutex
	entries map[Key]Entry

	observed atomic.Uint64
	hits     atomic.Uint64
	misses   atomic.Uint64
	expired  atomic.Uint64
	sweeps   atomic.Uint64
}

// New builds a catalog.
func New(cfg Config) (*Catalog, error) {
	if cfg.Now == nil {
		return nil, fmt.Errorf("catalog: Config.Now (virtual clock source) is required")
	}
	ttl := cfg.TTL
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Catalog{
		ttl:     ttl,
		feeds:   []func() time.Duration{cfg.Now},
		entries: map[Key]Entry{},
	}, nil
}

// TTL returns the configured lease duration.
func (c *Catalog) TTL() time.Duration { return c.ttl }

// Feed is one registered advert source with its own virtual clock; its
// Observe leases entries on that clock. Obtain with Catalog.AddFeed.
type Feed struct {
	c   *Catalog
	idx int
}

// Index returns the feed's index (the Entry.Feed value its entries carry).
func (f *Feed) Index() int { return f.idx }

// Observe absorbs one advert from this feed; the lease rides the feed's own
// clock. Same contract as Catalog.Observe otherwise.
func (f *Feed) Observe(a micropnp.Advert) { f.c.observe(f.idx, a) }

// AddFeed registers an additional advert source whose leases expire on its
// own virtual clock — one feed per member deployment when the catalog fronts
// a fleet, since federated deployments do not share a timeline. Feed indices
// are assigned in registration order starting at 1 (0 is Config.Now).
func (c *Catalog) AddFeed(now func() time.Duration) (*Feed, error) {
	if now == nil {
		return nil, fmt.Errorf("catalog: AddFeed needs a virtual clock source")
	}
	c.feedMu.Lock()
	c.feeds = append(c.feeds, now)
	idx := len(c.feeds) - 1
	c.feedMu.Unlock()
	return &Feed{c: c, idx: idx}, nil
}

// feedNow reads one feed's clock.
func (c *Catalog) feedNow(feed int) time.Duration {
	c.feedMu.RLock()
	now := c.feeds[feed]
	c.feedMu.RUnlock()
	return now()
}

// Observe absorbs one advert: it upserts the {Thing, peripheral} entry and
// refreshes its lease on the catalog's own clock (feed 0). Wire it to the
// advert flow with client.AddAdvertHook(cat.Observe). Safe for concurrent
// use; must not block (it runs on the delivering goroutine).
func (c *Catalog) Observe(a micropnp.Advert) { c.observe(0, a) }

func (c *Catalog) observe(feed int, a micropnp.Advert) {
	k := Key{Thing: a.Thing, Device: a.Device}
	now := c.feedNow(feed)
	c.observed.Add(1)
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		e = Entry{Thing: a.Thing, Device: a.Device, Channel: -1, FirstSeen: a.At}
	}
	// Adverts may omit optional TLVs; never let a terse refresh erase
	// metadata a richer advert already provided.
	if a.Name != "" {
		e.Name = a.Name
	}
	if a.Units != "" {
		e.Units = a.Units
	}
	if a.Channel >= 0 {
		e.Channel = a.Channel
	}
	e.LastSeen = a.At
	e.Expires = now + c.ttl
	e.Solicited = a.Solicited
	e.Feed = feed
	c.entries[k] = e
	c.mu.Unlock()
}

// Get returns the live entry for a {Thing, peripheral} pair. An entry whose
// lease already ran out but which no sweep collected yet still counts as
// live — expiry is the sweep's job, so reads stay cheap and monotone.
func (c *Catalog) Get(thing netip.Addr, device micropnp.DeviceID) (Entry, bool) {
	c.mu.RLock()
	e, ok := c.entries[Key{Thing: thing, Device: device}]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

// Thing returns every live entry of one Thing, ordered by peripheral type.
func (c *Catalog) Thing(thing netip.Addr) []Entry {
	c.mu.RLock()
	var out []Entry
	for k, e := range c.entries {
		if k.Thing == thing {
			out = append(out, e)
		}
	}
	c.mu.RUnlock()
	if len(out) == 0 {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

// Filter narrows a listing. Zero fields match everything.
type Filter struct {
	// Device keeps entries of one peripheral type (micropnp.AllPeripherals
	// or 0 matches any).
	Device micropnp.DeviceID
	// Units keeps entries whose advertised unit string equals Units.
	Units string
	// Thing keeps entries of one Thing.
	Thing netip.Addr
}

func (f Filter) matches(e Entry) bool {
	if f.Device != 0 && f.Device != micropnp.AllPeripherals && e.Device != f.Device {
		return false
	}
	if f.Units != "" && e.Units != f.Units {
		return false
	}
	if f.Thing.IsValid() && e.Thing != f.Thing {
		return false
	}
	return true
}

// List returns one page of the filtered catalog plus the total number of
// matching entries. Entries are ordered by (Thing address, peripheral type);
// each page is a consistent snapshot in that total order, and offset/limit
// select the page (limit <= 0 means everything). A multi-page walk stays
// duplicate-free while the key set is stable or only shrinking — refreshes
// update entries in place and expiries can only shift later pages left
// (skips, never repeats). A registration of a NEW key that sorts before the
// walk's cursor shifts later pages right, so such a walk can legitimately
// see an entry twice; callers that need exactly-once enumeration under
// insert churn should fetch one unpaged snapshot (limit <= 0) instead.
func (c *Catalog) List(f Filter, offset, limit int) (page []Entry, total int) {
	c.mu.RLock()
	matched := make([]Entry, 0, len(c.entries))
	for _, e := range c.entries {
		if f.matches(e) {
			matched = append(matched, e)
		}
	}
	c.mu.RUnlock()
	if len(matched) == 0 {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	sort.Slice(matched, func(i, j int) bool {
		if matched[i].Thing != matched[j].Thing {
			return matched[i].Thing.Less(matched[j].Thing)
		}
		return matched[i].Device < matched[j].Device
	})
	total = len(matched)
	if offset < 0 {
		offset = 0
	}
	if offset >= total {
		return nil, total
	}
	matched = matched[offset:]
	if limit > 0 && limit < len(matched) {
		matched = matched[:limit]
	}
	return matched, total
}

// Size returns the number of live entries.
func (c *Catalog) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Sweep removes every entry whose lease ran out, returning how many were
// dropped. Each entry's deadline is evaluated against its own feed's clock —
// federated members advance independently, so there is no one "now". Called
// periodically by the Start goroutine; tests may call it directly for
// deterministic expiry.
func (c *Catalog) Sweep() int {
	c.feedMu.RLock()
	nows := make([]time.Duration, len(c.feeds))
	for i, now := range c.feeds {
		nows[i] = now()
	}
	c.feedMu.RUnlock()
	c.sweeps.Add(1)
	c.mu.Lock()
	dropped := 0
	for k, e := range c.entries {
		if e.Expires <= nows[e.Feed] {
			delete(c.entries, k)
			dropped++
		}
	}
	c.mu.Unlock()
	if dropped > 0 {
		c.expired.Add(uint64(dropped))
	}
	return dropped
}

// Start launches the sweep goroutine, ticking every interval of wall time
// (leases themselves are evaluated against the virtual clock). It returns a
// stop function; stopping is idempotent and waits for the goroutine to exit.
func (c *Catalog) Start(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.Sweep()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}

// Stats returns a snapshot of the counters.
func (c *Catalog) Stats() Stats {
	c.mu.RLock()
	size := len(c.entries)
	things := map[netip.Addr]struct{}{}
	for k := range c.entries {
		things[k.Thing] = struct{}{}
	}
	c.mu.RUnlock()
	return Stats{
		Size:     size,
		Things:   len(things),
		Observed: c.observed.Load(),
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Expired:  c.expired.Load(),
		Sweeps:   c.sweeps.Load(),
	}
}
