package catalog

import (
	"context"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"micropnp"
)

// fakeClock is a manually-advanced virtual clock for pure-unit tests.
type fakeClock struct{ now atomic.Int64 }

func (f *fakeClock) Now() time.Duration      { return time.Duration(f.now.Load()) }
func (f *fakeClock) Advance(d time.Duration) { f.now.Add(int64(d)) }
func (f *fakeClock) Set(d time.Duration)     { f.now.Store(int64(d)) }

func mustCatalog(t *testing.T, cfg Config) *Catalog {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func addr(i int) netip.Addr {
	a := netip.MustParseAddr("fd00::0")
	b := a.As16()
	b[14] = byte(i >> 8)
	b[15] = byte(i)
	return netip.AddrFrom16(b)
}

func advertAt(thing netip.Addr, dev micropnp.DeviceID, at time.Duration) micropnp.Advert {
	return micropnp.Advert{Thing: thing, Device: dev, Name: "t", Units: "u", Channel: 0, At: at}
}

func TestNewRequiresClock(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil clock")
	}
}

func TestObserveRefreshExtendsLease(t *testing.T) {
	clk := &fakeClock{}
	c := mustCatalog(t, Config{TTL: 10 * time.Second, Now: clk.Now})

	th := addr(1)
	c.Observe(advertAt(th, micropnp.TMP36, clk.Now()))
	e, ok := c.Get(th, micropnp.TMP36)
	if !ok {
		t.Fatal("entry missing after Observe")
	}
	if e.Expires != 10*time.Second {
		t.Fatalf("Expires = %v, want 10s", e.Expires)
	}

	// Refresh at t=8s: the lease must extend to 18s, so a sweep at t=12s
	// (past the original deadline) keeps the entry.
	clk.Set(8 * time.Second)
	c.Observe(advertAt(th, micropnp.TMP36, clk.Now()))
	clk.Set(12 * time.Second)
	if n := c.Sweep(); n != 0 {
		t.Fatalf("sweep dropped %d entries despite refresh", n)
	}
	if _, ok := c.Get(th, micropnp.TMP36); !ok {
		t.Fatal("refreshed entry expired at the original deadline")
	}

	// Without a further refresh the entry dies at 18s.
	clk.Set(18 * time.Second)
	if n := c.Sweep(); n != 1 {
		t.Fatalf("sweep dropped %d entries, want 1", n)
	}
	if _, ok := c.Get(th, micropnp.TMP36); ok {
		t.Fatal("entry survived past its extended lease")
	}
	st := c.Stats()
	if st.Expired != 1 || st.Observed != 2 {
		t.Fatalf("stats = %+v, want Expired=1 Observed=2", st)
	}
}

func TestObservePreservesMetadataOnTerseRefresh(t *testing.T) {
	clk := &fakeClock{}
	c := mustCatalog(t, Config{TTL: time.Minute, Now: clk.Now})
	th := addr(1)
	c.Observe(micropnp.Advert{Thing: th, Device: micropnp.BMP180, Name: "lab", Units: "Pa", Channel: 3})
	// A terse advert (no name/units, channel unset) must not erase metadata.
	c.Observe(micropnp.Advert{Thing: th, Device: micropnp.BMP180, Channel: -1})
	e, _ := c.Get(th, micropnp.BMP180)
	if e.Name != "lab" || e.Units != "Pa" || e.Channel != 3 {
		t.Fatalf("terse refresh erased metadata: %+v", e)
	}
}

func TestListFilterAndPaging(t *testing.T) {
	clk := &fakeClock{}
	c := mustCatalog(t, Config{TTL: time.Minute, Now: clk.Now})
	for i := 0; i < 5; i++ {
		c.Observe(advertAt(addr(i), micropnp.TMP36, 0))
		c.Observe(advertAt(addr(i), micropnp.BMP180, 0))
	}

	all, total := c.List(Filter{}, 0, 0)
	if total != 10 || len(all) != 10 {
		t.Fatalf("List all: total=%d len=%d, want 10/10", total, len(all))
	}
	// Deterministic (thing, device) order.
	for i := 1; i < len(all); i++ {
		a, b := all[i-1], all[i]
		if b.Thing.Less(a.Thing) || (a.Thing == b.Thing && b.Device < a.Device) {
			t.Fatalf("listing out of order at %d: %v/%v before %v/%v", i, a.Thing, a.Device, b.Thing, b.Device)
		}
	}

	// Paging covers everything exactly once.
	var paged []Entry
	for off := 0; ; off += 3 {
		page, tot := c.List(Filter{}, off, 3)
		if tot != 10 {
			t.Fatalf("paged total = %d, want 10", tot)
		}
		if len(page) == 0 {
			break
		}
		paged = append(paged, page...)
	}
	if len(paged) != 10 {
		t.Fatalf("pages covered %d entries, want 10", len(paged))
	}
	for i := range paged {
		if paged[i].Thing != all[i].Thing || paged[i].Device != all[i].Device {
			t.Fatalf("page entry %d = %v/%v, want %v/%v", i, paged[i].Thing, paged[i].Device, all[i].Thing, all[i].Device)
		}
	}

	// Device filter.
	tmp, total := c.List(Filter{Device: micropnp.TMP36}, 0, 0)
	if total != 5 || len(tmp) != 5 {
		t.Fatalf("device filter: total=%d len=%d, want 5/5", total, len(tmp))
	}
	for _, e := range tmp {
		if e.Device != micropnp.TMP36 {
			t.Fatalf("device filter leaked %v", e.Device)
		}
	}
	// Thing filter.
	one, total := c.List(Filter{Thing: addr(2)}, 0, 0)
	if total != 2 || len(one) != 2 {
		t.Fatalf("thing filter: total=%d len=%d, want 2/2", total, len(one))
	}
	// AllPeripherals matches everything.
	if _, tot := c.List(Filter{Device: micropnp.AllPeripherals}, 0, 0); tot != 10 {
		t.Fatalf("AllPeripherals filter total = %d, want 10", tot)
	}
	// Offset past the end.
	if page, tot := c.List(Filter{}, 100, 3); tot != 10 || page != nil {
		t.Fatalf("offset past end: total=%d page=%v", tot, page)
	}
}

// TestPagingStableUnderChurn drives concurrent refresh, sweep and expiry
// while readers page through the catalog, asserting every walk is ordered
// and duplicate-free. The key set only ever shrinks once the readers start
// (refreshes update in place, expiries delete) — the regime where List's
// cross-page walk guarantee holds; inserts of new keys sorting before a
// walk's cursor would legitimately repeat entries, so registration churn
// is exercised by the lifecycle tests instead.
func TestPagingStableUnderChurn(t *testing.T) {
	clk := &fakeClock{}
	c := mustCatalog(t, Config{TTL: 5 * time.Second, Now: clk.Now})
	stop := c.Start(time.Millisecond)
	defer stop()

	// Stable population: 64 Things × 2 peripherals, refreshed forever.
	for i := 0; i < 64; i++ {
		c.Observe(advertAt(addr(i), micropnp.TMP36, clk.Now()))
		c.Observe(advertAt(addr(i), micropnp.Relay, clk.Now()))
	}
	// Ephemeral tail: registered once, never refreshed — the sweeper
	// deletes them mid-walk once the writer's clock passes the TTL.
	for i := 64; i < 80; i++ {
		c.Observe(advertAt(addr(i), micropnp.TMP36, clk.Now()))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup

	// Writer: refreshes the stable population in a rolling window while the
	// clock marches on. One full pass takes 64 × 50ms = 3.2s of the 5s TTL,
	// so stable entries never expire and no key is ever (re-)inserted.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for ctx.Err() == nil {
			i++
			clk.Advance(50 * time.Millisecond)
			now := clk.Now()
			c.Observe(advertAt(addr(i%64), micropnp.TMP36, now))
			c.Observe(advertAt(addr(i%64), micropnp.Relay, now))
		}
	}()

	// Readers: page through concurrently and check order + uniqueness.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				seen := map[Key]bool{}
				var prev *Entry
				for off := 0; ; off += 7 {
					page, _ := c.List(Filter{}, off, 7)
					if len(page) == 0 {
						break
					}
					for i := range page {
						e := page[i]
						k := Key{Thing: e.Thing, Device: e.Device}
						if seen[k] {
							t.Errorf("duplicate entry %v/%v in paged walk", e.Thing, e.Device)
							return
						}
						seen[k] = true
						if prev != nil {
							if e.Thing.Less(prev.Thing) || (e.Thing == prev.Thing && e.Device <= prev.Device) {
								t.Errorf("paged walk out of order: %v/%v after %v/%v", e.Thing, e.Device, prev.Thing, prev.Device)
								return
							}
						}
						p := e
						prev = &p
					}
				}
				c.Get(addr(3), micropnp.TMP36)
				c.Thing(addr(3))
				c.Stats()
			}
		}()
	}

	time.Sleep(150 * time.Millisecond)
	cancel()
	wg.Wait()
	if t.Failed() {
		return
	}
	if st := c.Stats(); st.Sweeps == 0 {
		t.Fatal("sweeper never ran")
	}
	// The ephemeral tail is gone once the clock passes its TTL (push it
	// there if the writer stopped short — the stable entries were all
	// refreshed within the last 3.2s, so they survive the nudge), and the
	// stable population survived the whole run.
	if clk.Now() <= 5*time.Second {
		clk.Advance(5*time.Second + time.Millisecond - clk.Now())
	}
	c.Sweep()
	if _, total := c.List(Filter{}, 0, 0); total != 128 {
		t.Fatalf("post-churn total = %d, want the 128 stable entries", total)
	}
	if _, ok := c.Get(addr(70), micropnp.TMP36); ok {
		t.Fatal("ephemeral entry survived its TTL")
	}
}

// newVirtualRig boots a virtual deployment with nThings Things (TMP36 each),
// a client whose adverts feed the catalog, and returns everything needed to
// drive churn.
func newVirtualRig(t *testing.T, nThings int, ttl time.Duration) (*micropnp.Deployment, *micropnp.Client, []*micropnp.Thing, *Catalog) {
	t.Helper()
	d, err := micropnp.NewDeployment()
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	t.Cleanup(d.Close)
	cl, err := d.AddClient()
	if err != nil {
		t.Fatalf("AddClient: %v", err)
	}
	cat := mustCatalog(t, Config{TTL: ttl, Now: d.Now})
	cl.AddAdvertHook(cat.Observe)
	things := make([]*micropnp.Thing, nThings)
	for i := range things {
		th, err := d.AddThing("t")
		if err != nil {
			t.Fatalf("AddThing: %v", err)
		}
		if err := th.PlugTMP36(0); err != nil {
			t.Fatalf("PlugTMP36: %v", err)
		}
		things[i] = th
	}
	d.Run() // let plug-in sequences (and their adverts) play out
	return d, cl, things, cat
}

// TestLeaseLifecycleVirtual exercises the full gateway-shaped lease flow on
// the virtual clock: plug-in adverts populate the catalog, periodic
// discoveries refresh leases, and an unplugged peripheral disappears within
// one TTL+sweep because discovery replies stop covering it.
func TestLeaseLifecycleVirtual(t *testing.T) {
	const ttl = 30 * time.Second
	d, cl, things, cat := newVirtualRig(t, 3, ttl)

	if got := cat.Size(); got != 3 {
		t.Fatalf("catalog size after plug-in = %d, want 3", got)
	}

	refresh := func() {
		if _, err := cl.Discover(context.Background(), micropnp.AllPeripherals); err != nil {
			t.Fatalf("Discover: %v", err)
		}
	}

	// Refresh rounds spanning several TTLs: nothing may expire while every
	// peripheral keeps answering discoveries.
	for i := 0; i < 8; i++ {
		d.RunFor(10 * time.Second)
		refresh()
		if n := cat.Sweep(); n != 0 {
			t.Fatalf("round %d: sweep dropped %d live entries", i, n)
		}
	}
	if got := cat.Size(); got != 3 {
		t.Fatalf("catalog size after refresh rounds = %d, want 3", got)
	}

	// Hot-unplug: the peripheral stops appearing in discovery replies, so
	// its lease runs out within one TTL and the next sweep removes it.
	unplugged := things[0].Addr()
	if err := things[0].Unplug(0); err != nil {
		t.Fatalf("Unplug: %v", err)
	}
	deadline, ok := cat.Get(unplugged, micropnp.TMP36)
	if !ok {
		t.Fatal("unplugged entry vanished before its lease ran out")
	}
	for d.Now() <= deadline.Expires {
		d.RunFor(10 * time.Second)
		refresh()
	}
	if n := cat.Sweep(); n != 1 {
		t.Fatalf("sweep after unplug dropped %d entries, want 1", n)
	}
	if _, ok := cat.Get(unplugged, micropnp.TMP36); ok {
		t.Fatal("unplugged peripheral still catalogued after TTL+sweep")
	}
	if got := cat.Size(); got != 2 {
		t.Fatalf("catalog size after unplug expiry = %d, want 2", got)
	}

	// Hot-plug back in: the plug-in advert re-registers it without any
	// discovery round.
	if err := things[0].PlugTMP36(0); err != nil {
		t.Fatalf("re-plug: %v", err)
	}
	d.Run()
	if _, ok := cat.Get(unplugged, micropnp.TMP36); !ok {
		t.Fatal("re-plugged peripheral not catalogued from its plug-in advert")
	}
}

// TestSweepGoroutineVirtual runs the wall-ticker sweeper against a virtual
// deployment under -race: the sweep goroutine races with advert deliveries
// (Observe) and with readers.
func TestSweepGoroutineVirtual(t *testing.T) {
	const ttl = 20 * time.Second
	d, cl, _, cat := newVirtualRig(t, 4, ttl)
	stop := cat.Start(2 * time.Millisecond)
	defer stop()

	for i := 0; i < 40; i++ {
		d.RunFor(5 * time.Second)
		if _, err := cl.Discover(context.Background(), micropnp.AllPeripherals); err != nil {
			t.Fatalf("Discover: %v", err)
		}
		cat.List(Filter{}, 0, 10)
		cat.Stats()
	}
	stop()
	if got := cat.Size(); got != 4 {
		t.Fatalf("catalog size = %d, want 4 (refreshed throughout)", got)
	}
}

// TestSweepGoroutineRealtime is the realtime-mode counterpart: adverts are
// delivered from pool workers while the sweeper and readers run, and expiry
// happens on the scaled wall clock with no manual Sweep calls.
func TestSweepGoroutineRealtime(t *testing.T) {
	d, err := micropnp.NewDeployment(micropnp.WithRealTime(), micropnp.WithTimeScale(200))
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	defer d.Close()
	cl, err := d.AddClient()
	if err != nil {
		t.Fatalf("AddClient: %v", err)
	}
	// 20 s virtual TTL = 100 ms of wall time at scale 200 — several times
	// one discovery round (the default request window), so refreshes land
	// well inside the lease.
	cat := mustCatalog(t, Config{TTL: 20 * time.Second, Now: d.Now})
	cl.AddAdvertHook(cat.Observe)
	stop := cat.Start(2 * time.Millisecond)
	defer stop()

	th, err := d.AddThing("rt")
	if err != nil {
		t.Fatalf("AddThing: %v", err)
	}
	if err := th.PlugTMP36(0); err != nil {
		t.Fatalf("PlugTMP36: %v", err)
	}

	ctx := context.Background()
	// Keep the lease alive with discovery rounds; readers race the sweeper.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < 20; i++ {
		if _, err := cl.Discover(ctx, micropnp.AllPeripherals); err != nil {
			t.Fatalf("Discover: %v", err)
		}
		cat.List(Filter{}, 0, 10)
		cat.Get(th.Addr(), micropnp.TMP36)
		if time.Now().After(deadline) {
			break
		}
	}
	if _, ok := cat.Get(th.Addr(), micropnp.TMP36); !ok {
		t.Fatal("entry expired while discovery rounds kept refreshing it")
	}

	// Stop refreshing: the sweeper alone must collect the entry within a
	// few TTLs of (scaled) wall time.
	expireBy := time.Now().Add(5 * time.Second)
	for cat.Size() != 0 {
		if time.Now().After(expireBy) {
			t.Fatalf("entry never expired; size=%d stats=%+v now=%v", cat.Size(), cat.Stats(), d.Now())
		}
		time.Sleep(time.Millisecond)
	}
	if st := cat.Stats(); st.Expired == 0 {
		t.Fatalf("stats record no expiries: %+v", st)
	}
}
