package dsl

import (
	"strings"
	"testing"

	"micropnp/internal/bytecode"
	"micropnp/internal/vm"
)

// run compiles src and executes the named handler, returning the machine.
func run(t *testing.T, src, handler string, args ...int32) *vm.Machine {
	t.Helper()
	prog, err := Compile(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run("init", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(handler, args); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCompoundAssignments(t *testing.T) {
	src := `int32_t a;
uint8_t buf[4];

event init():
    a = 10;
    buf[1] = 5;

event destroy():
    pass;

event work():
    a += 7;
    a -= 2;
    buf[1] += 3;
    buf[1] -= 1;
`
	m := run(t, src, "work")
	if got := m.Static(0)[0]; got != 15 {
		t.Errorf("a = %d, want 15", got)
	}
	if got := m.Static(1)[1]; got != 7 {
		t.Errorf("buf[1] = %d, want 7", got)
	}
}

func TestPostfixDecrement(t *testing.T) {
	src := `int32_t a, old;

event init():
    a = 5;

event destroy():
    pass;

event work():
    old = a--;
    a--;
`
	m := run(t, src, "work")
	if got := m.Static(0)[0]; got != 3 {
		t.Errorf("a = %d, want 3", got)
	}
	if got := m.Static(1)[0]; got != 5 {
		t.Errorf("old = %d, want 5 (postfix returns the previous value)", got)
	}
}

func TestLogicalOperatorsTruthTable(t *testing.T) {
	src := `int32_t r;

event init():
    pass;

event destroy():
    pass;

event andOp(int32_t a, int32_t b):
    r = 0;
    if a and b:
        r = 1;

event orOp(int32_t a, int32_t b):
    r = 0;
    if a or b:
        r = 1;

event notOp(int32_t a):
    r = 0;
    if not a:
        r = 1;
`
	prog, err := Compile(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		h    string
		a, b int32
		want int32
	}{
		{"andOp", 0, 0, 0}, {"andOp", 1, 0, 0}, {"andOp", 0, 9, 0}, {"andOp", 5, 9, 1},
		{"orOp", 0, 0, 0}, {"orOp", 2, 0, 1}, {"orOp", 0, 3, 1}, {"orOp", 4, 4, 1},
		{"notOp", 0, 0, 1}, {"notOp", 7, 0, 0},
	}
	for _, c := range cases {
		args := []int32{c.a, c.b}
		if c.h == "notOp" {
			args = args[:1]
		}
		if _, err := m.Run(c.h, args); err != nil {
			t.Fatal(err)
		}
		if got := m.Static(0)[0]; got != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.h, c.a, c.b, got, c.want)
		}
	}
}

func TestElifChainSelectsCorrectBranch(t *testing.T) {
	src := `int32_t r;

event init():
    pass;

event destroy():
    pass;

event pick(int32_t x):
    if x == 1:
        r = 100;
    elif x == 2:
        r = 200;
    elif x == 3:
        r = 300;
    else:
        r = -1;
`
	prog, err := Compile(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	for x, want := range map[int32]int32{1: 100, 2: 200, 3: 300, 9: -1} {
		if _, err := m.Run("pick", []int32{x}); err != nil {
			t.Fatal(err)
		}
		if got := m.Static(0)[0]; got != want {
			t.Errorf("pick(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestWhileLoopComputes(t *testing.T) {
	src := `int32_t sum;

event init():
    pass;

event destroy():
    pass;

event gauss(int32_t n):
    sum = 0;
    int32_t i = 1;
    while i <= n:
        sum += i;
        i++;
`
	prog, err := Compile(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run("gauss", []int32{100}); err != nil {
		t.Fatal(err)
	}
	if got := m.Static(0)[0]; got != 5050 {
		t.Fatalf("gauss(100) = %d, want 5050", got)
	}
}

func TestTildeAndNegation(t *testing.T) {
	src := `int32_t a, b;

event init():
    pass;

event destroy():
    pass;

event work(int32_t x):
    a = ~x;
    b = -x;
`
	prog, _ := Compile(src, 1)
	m, _ := vm.NewMachine(prog)
	if _, err := m.Run("work", []int32{5}); err != nil {
		t.Fatal(err)
	}
	if m.Static(0)[0] != ^int32(5) || m.Static(1)[0] != -5 {
		t.Fatalf("~5 = %d, -5 = %d", m.Static(0)[0], m.Static(1)[0])
	}
}

func TestArithmeticShiftRight(t *testing.T) {
	src := `int32_t r;

event init():
    pass;

event destroy():
    pass;

event work(int32_t x):
    r = x >> 4;
`
	prog, _ := Compile(src, 1)
	m, _ := vm.NewMachine(prog)
	if _, err := m.Run("work", []int32{-7357 * 1000}); err != nil {
		t.Fatal(err)
	}
	// Arithmetic shift: Go semantics, required by the BMP180 math.
	if got, want := m.Static(0)[0], int32(-7357*1000)>>4; got != want {
		t.Fatalf(">> = %d, want %d", got, want)
	}
}

func TestDisassemblyOfCompiledDriver(t *testing.T) {
	prog, err := Compile(listing1Joined, 0xed3f0ac1)
	if err != nil {
		t.Fatal(err)
	}
	text := bytecode.DisassembleProgram(prog)
	for _, want := range []string{"uart.init/4", "uart.read/0", "this.readDone/0", "ret.s"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}

func TestTokenDiagnostics(t *testing.T) {
	toks, err := Lex("x = 1;\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos() != "1:1" {
		t.Errorf("pos = %s", toks[0].Pos())
	}
	if toks[0].String() != "identifier(x)" {
		t.Errorf("ident renders as %q", toks[0].String())
	}
	if TokShl.String() != "<<" || TokenKind(999).String() == "" {
		t.Error("token kinds must render")
	}
}
