package dsl

import (
	"errors"
	"fmt"
)

// Parse builds the AST for DSL source.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(k TokenKind) bool {
	if p.cur().Kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k TokenKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, fmt.Errorf("%s: expected %v, found %v", t.Pos(), k, t)
	}
	p.advance()
	return t, nil
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for {
		switch p.cur().Kind {
		case TokEOF:
			if len(prog.Handlers) == 0 {
				return nil, errors.New("driver defines no handlers")
			}
			return prog, nil
		case TokNewline:
			p.advance()
		case TokImport:
			p.advance()
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemicolon); err != nil {
				return nil, err
			}
			prog.Imports = append(prog.Imports, name.Text)
		case TokEvent, TokError:
			h, err := p.parseHandler()
			if err != nil {
				return nil, err
			}
			prog.Handlers = append(prog.Handlers, h)
		case TokIdent:
			if _, ok := builtinTypes[p.cur().Text]; !ok {
				return nil, fmt.Errorf("%s: unknown declaration %q", p.cur().Pos(), p.cur().Text)
			}
			decls, err := p.parseVarDecls()
			if err != nil {
				return nil, err
			}
			prog.Statics = append(prog.Statics, decls...)
		default:
			return nil, fmt.Errorf("%s: unexpected %v at top level", p.cur().Pos(), p.cur())
		}
	}
}

// parseVarDecls parses `type name[len]?, name2, ...;` (top-level statics).
func (p *parser) parseVarDecls() ([]*VarDecl, error) {
	typTok := p.advance()
	typ := builtinTypes[typTok.Text]
	var out []*VarDecl
	for {
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		d := &VarDecl{Type: typ, Name: name.Text, Line: name.Line}
		if p.accept(TokLBracket) {
			n, err := p.expect(TokInt)
			if err != nil {
				return nil, err
			}
			if n.Val <= 0 || n.Val > 4096 {
				return nil, fmt.Errorf("%s: array length %d out of range", n.Pos(), n.Val)
			}
			d.ArrayLen = int(n.Val)
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
		}
		out = append(out, d)
		if p.accept(TokComma) {
			continue
		}
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return out, nil
	}
}

func (p *parser) parseHandler() (*HandlerDecl, error) {
	kw := p.advance() // event or error
	h := &HandlerDecl{IsError: kw.Kind == TokError, Line: kw.Line}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	h.Name = name.Text
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if !p.accept(TokRParen) {
		for {
			typTok, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			typ, ok := builtinTypes[typTok.Text]
			if !ok {
				return nil, fmt.Errorf("%s: unknown parameter type %q", typTok.Pos(), typTok.Text)
			}
			pname, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			h.Params = append(h.Params, &VarDecl{Type: typ, Name: pname.Text, Line: pname.Line})
			if p.accept(TokComma) {
				continue
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			break
		}
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	h.Body = body
	return h, nil
}

// parseBlock parses NEWLINE INDENT stmt+ DEDENT.
func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokNewline); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokIndent); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.cur().Kind != TokDedent && p.cur().Kind != TokEOF {
		if p.accept(TokNewline) {
			continue
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	if _, err := p.expect(TokDedent); err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("%s: empty block", p.cur().Pos())
	}
	return stmts, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case TokIf:
		return p.parseIf()
	case TokWhile:
		return p.parseWhile()
	case TokSignal:
		return p.parseSignal()
	case TokReturn:
		return p.parseReturn()
	case TokPass:
		p.advance()
		if err := p.endSimple(); err != nil {
			return nil, err
		}
		return &PassStmt{Line: t.Line}, nil
	case TokIdent:
		if _, isType := builtinTypes[t.Text]; isType {
			return p.parseLocalDecl()
		}
		return p.parseAssignOrExpr()
	default:
		return nil, fmt.Errorf("%s: unexpected %v in statement position", t.Pos(), t)
	}
}

// endSimple consumes the `;` + newline terminating a simple statement.
func (p *parser) endSimple() error {
	if _, err := p.expect(TokSemicolon); err != nil {
		return err
	}
	if _, err := p.expect(TokNewline); err != nil {
		return err
	}
	return nil
}

func (p *parser) parseLocalDecl() (Stmt, error) {
	typTok := p.advance()
	typ := builtinTypes[typTok.Text]
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Type: typ, Name: name.Text, Line: name.Line}
	if p.accept(TokAssign) {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	if err := p.endSimple(); err != nil {
		return nil, err
	}
	return &LocalDecl{Decl: d, Line: typTok.Line}, nil
}

func (p *parser) parseAssignOrExpr() (Stmt, error) {
	t := p.cur()
	// Postfix-only statement: `idx++;`.
	if p.peek().Kind == TokPlusPlus || p.peek().Kind == TokMinusMinus {
		name := p.advance()
		op := p.advance()
		if err := p.endSimple(); err != nil {
			return nil, err
		}
		return &ExprStmt{X: &PostfixExpr{Name: name.Text, Op: op.Kind, Line: name.Line}, Line: name.Line}, nil
	}

	lv := &LValue{Name: p.advance().Text, Line: t.Line}
	if p.accept(TokLBracket) {
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		lv.Index = idx
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	}
	opTok := p.cur()
	switch opTok.Kind {
	case TokAssign, TokPlusEq, TokMinusEq:
		p.advance()
	default:
		return nil, fmt.Errorf("%s: expected assignment operator, found %v", opTok.Pos(), opTok)
	}
	val, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.endSimple(); err != nil {
		return nil, err
	}
	return &AssignStmt{Target: lv, Op: opTok.Kind, Value: val, Line: t.Line}, nil
}

func (p *parser) parseSignal() (Stmt, error) {
	kw := p.advance()
	var dest string
	switch p.cur().Kind {
	case TokThis:
		dest = "this"
		p.advance()
	case TokIdent:
		dest = p.advance().Text
	default:
		return nil, fmt.Errorf("%s: expected signal destination, found %v", p.cur().Pos(), p.cur())
	}
	if _, err := p.expect(TokDot); err != nil {
		return nil, err
	}
	evt, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var args []Expr
	if !p.accept(TokRParen) {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.accept(TokComma) {
				continue
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			break
		}
	}
	if err := p.endSimple(); err != nil {
		return nil, err
	}
	return &SignalStmt{Dest: dest, Event: evt.Text, Args: args, Line: kw.Line}, nil
}

func (p *parser) parseReturn() (Stmt, error) {
	kw := p.advance()
	if p.accept(TokSemicolon) {
		if _, err := p.expect(TokNewline); err != nil {
			return nil, err
		}
		return &ReturnStmt{Line: kw.Line}, nil
	}
	val, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.endSimple(); err != nil {
		return nil, err
	}
	return &ReturnStmt{Value: val, Line: kw.Line}, nil
}

func (p *parser) parseIf() (Stmt, error) {
	kw := p.advance()
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	node := &IfStmt{Cond: cond, Then: then, Line: kw.Line}
	switch p.cur().Kind {
	case TokElif:
		elifStmt, err := p.parseIf() // reuse: elif parses like if
		if err != nil {
			return nil, err
		}
		node.Else = []Stmt{elifStmt}
	case TokElse:
		p.advance()
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		els, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		node.Else = els
	}
	return node, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	kw := p.advance()
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Line: kw.Line}, nil
}

// Expression parsing, precedence climbing (lowest first):
// or < and < not/! < comparison < | < ^ < & < shift < additive <
// multiplicative < unary < postfix/primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokOr {
		op := p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: TokOr, L: l, R: r, Line: op.Line}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokAnd {
		op := p.advance()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: TokAnd, L: l, R: r, Line: op.Line}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.cur().Kind == TokNot || p.cur().Kind == TokBang {
		op := p.advance()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: TokBang, X: x, Line: op.Line}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseBitOr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
		op := p.advance()
		r, err := p.parseBitOr()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op.Kind, L: l, R: r, Line: op.Line}, nil
	}
	return l, nil
}

func (p *parser) parseBitOr() (Expr, error)  { return p.parseBinary(p.parseBitXor, TokPipe) }
func (p *parser) parseBitXor() (Expr, error) { return p.parseBinary(p.parseBitAnd, TokCaret) }
func (p *parser) parseBitAnd() (Expr, error) { return p.parseBinary(p.parseShift, TokAmp) }
func (p *parser) parseShift() (Expr, error)  { return p.parseBinary(p.parseAdditive, TokShl, TokShr) }
func (p *parser) parseAdditive() (Expr, error) {
	return p.parseBinary(p.parseMultiplicative, TokPlus, TokMinus)
}
func (p *parser) parseMultiplicative() (Expr, error) {
	return p.parseBinary(p.parseUnary, TokStar, TokSlash, TokPercent)
}

func (p *parser) parseBinary(next func() (Expr, error), ops ...TokenKind) (Expr, error) {
	l, err := next()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, k := range ops {
			if p.cur().Kind == k {
				op := p.advance()
				r, err := next()
				if err != nil {
					return nil, err
				}
				l = &BinaryExpr{Op: k, L: l, R: r, Line: op.Line}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case TokMinus, TokTilde, TokBang:
		op := p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op.Kind, X: x, Line: op.Line}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt, TokChar:
		p.advance()
		return &IntLit{Val: int32(t.Val), Line: t.Line}, nil
	case TokTrue:
		p.advance()
		return &IntLit{Val: 1, Line: t.Line}, nil
	case TokFalse:
		p.advance()
		return &IntLit{Val: 0, Line: t.Line}, nil
	case TokLParen:
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case TokIdent:
		p.advance()
		switch p.cur().Kind {
		case TokLBracket:
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: t.Text, Index: idx, Line: t.Line}, nil
		case TokPlusPlus, TokMinusMinus:
			op := p.advance()
			return &PostfixExpr{Name: t.Text, Op: op.Kind, Line: t.Line}, nil
		default:
			return &Ident{Name: t.Text, Line: t.Line}, nil
		}
	default:
		return nil, fmt.Errorf("%s: unexpected %v in expression", t.Pos(), t)
	}
}
