package dsl

// Type is a DSL value type. All numeric types occupy one 32-bit VM cell; the
// width information drives diagnostics.
type Type struct {
	Name string
	Bits int
	// Signed is informational (the VM computes in int32).
	Signed bool
	// Bool marks the bool type.
	Bool bool
}

// Builtin types of the DSL.
var builtinTypes = map[string]Type{
	"uint8_t":  {Name: "uint8_t", Bits: 8},
	"int8_t":   {Name: "int8_t", Bits: 8, Signed: true},
	"uint16_t": {Name: "uint16_t", Bits: 16},
	"int16_t":  {Name: "int16_t", Bits: 16, Signed: true},
	"uint32_t": {Name: "uint32_t", Bits: 32},
	"int32_t":  {Name: "int32_t", Bits: 32, Signed: true},
	"char":     {Name: "char", Bits: 8},
	"bool":     {Name: "bool", Bits: 1, Bool: true},
}

// Program is the AST root.
type Program struct {
	Imports  []string
	Statics  []*VarDecl
	Handlers []*HandlerDecl
}

// VarDecl declares one static or local variable.
type VarDecl struct {
	Type     Type
	Name     string
	ArrayLen int  // 0 for scalars
	Init     Expr // optional (locals only)
	Line     int
}

// HandlerDecl is one event or error handler.
type HandlerDecl struct {
	IsError bool
	Name    string
	Params  []*VarDecl
	Body    []Stmt
	Line    int
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// AssignStmt is `lvalue = expr;`, `lvalue += expr;` or `lvalue -= expr;`.
type AssignStmt struct {
	Target *LValue
	Op     TokenKind // TokAssign, TokPlusEq, TokMinusEq
	Value  Expr
	Line   int
}

// LValue is an assignable location: a variable or an array element.
type LValue struct {
	Name  string
	Index Expr // nil for scalars
	Line  int
}

// SignalStmt is `signal dest.event(args...);`.
type SignalStmt struct {
	Dest  string // "this" or an imported library
	Event string
	Args  []Expr
	Line  int
}

// ReturnStmt is `return;` or `return expr;`. Returning a bare array static
// transfers the whole array to the pending remote operation.
type ReturnStmt struct {
	Value Expr // nil for bare return
	Line  int
}

// IfStmt is an if/elif/else chain (elif is desugared into nested IfStmt).
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // may be nil
	Line int
}

// WhileStmt is a bounded loop. Handlers run to completion, so loops must
// terminate; the VM enforces a fuel limit at runtime.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

// LocalDecl declares a handler-local variable.
type LocalDecl struct {
	Decl *VarDecl
	Line int
}

// PassStmt is the empty statement.
type PassStmt struct{ Line int }

// ExprStmt evaluates an expression for its side effect (e.g. `idx++;`).
type ExprStmt struct {
	X    Expr
	Line int
}

func (*AssignStmt) stmtNode() {}
func (*SignalStmt) stmtNode() {}
func (*ReturnStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*LocalDecl) stmtNode()  {}
func (*PassStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()   {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// IntLit is an integer, character or boolean literal.
type IntLit struct {
	Val  int32
	Line int
}

// Ident references a variable or builtin constant.
type Ident struct {
	Name string
	Line int
}

// IndexExpr is `name[expr]`.
type IndexExpr struct {
	Name  string
	Index Expr
	Line  int
}

// UnaryExpr is `-x`, `~x`, `!x` / `not x`.
type UnaryExpr struct {
	Op   TokenKind
	X    Expr
	Line int
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   TokenKind
	L, R Expr
	Line int
}

// PostfixExpr is `x++` or `x--`; it evaluates to the value before the update.
type PostfixExpr struct {
	Name string
	Op   TokenKind // TokPlusPlus or TokMinusMinus
	Line int
}

func (*IntLit) exprNode()      {}
func (*Ident) exprNode()       {}
func (*IndexExpr) exprNode()   {}
func (*UnaryExpr) exprNode()   {}
func (*BinaryExpr) exprNode()  {}
func (*PostfixExpr) exprNode() {}
