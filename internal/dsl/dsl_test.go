package dsl

import (
	"strings"
	"testing"

	"micropnp/internal/bytecode"
)

// listing1 is the ID-20LA RFID driver from Listing 1 of the paper.
const listing1 = `import uart;

uint8_t idx, rfid[12];
bool busy;

event init():
    # 9600 baud, no parity, 1 stop bit, 8 data bits
    signal uart.init(9600, USART_PARITY_NONE,
        USART_STOP_BITS_1, USART_DATA_BITS_8);
    idx = 0;
    busy = false;

event destroy():
    # restore uart to platform defaults
    signal uart.reset();

event read(): # operation exposed over network
    if !busy:
        busy = true;
        signal uart.read(); # initiate read operation

event newdata(char c):
    # ignore CR, LF, STX, and ETX characters
    if !(c==0x0d or c==0x0a or c==0x02 or c==0x03):
        rfid[idx++] = c; # store character
    # complete RFID card ID read over uart
    if idx == 12:
        signal this.readDone();

event readDone():
    busy = false;
    idx = 0;
    return rfid;

error invalidConfiguration():
    signal this.destroy();

error uartInUse():
    signal this.destroy();

error timeOut():
    busy = false;
    idx = 0;
`

// The paper's Listing 1 splits the uart.init call over two lines; our
// grammar keeps statements on one logical line, so the continuation above is
// joined here.
const listing1Joined = `import uart;

uint8_t idx, rfid[12];
bool busy;

event init():
    signal uart.init(9600, USART_PARITY_NONE, USART_STOP_BITS_1, USART_DATA_BITS_8);
    idx = 0;
    busy = false;

event destroy():
    signal uart.reset();

event read():
    if !busy:
        busy = true;
        signal uart.read();

event newdata(char c):
    if !(c==0x0d or c==0x0a or c==0x02 or c==0x03):
        rfid[idx++] = c;
    if idx == 12:
        signal this.readDone();

event readDone():
    busy = false;
    idx = 0;
    return rfid;

error invalidConfiguration():
    signal this.destroy();

error uartInUse():
    signal this.destroy();

error timeOut():
    busy = false;
    idx = 0;
`

func TestCompileListing1(t *testing.T) {
	prog, err := Compile(listing1Joined, 0xed3f0ac1)
	if err != nil {
		t.Fatal(err)
	}
	if prog.DeviceID != 0xed3f0ac1 {
		t.Errorf("device ID = %#x", prog.DeviceID)
	}
	if len(prog.Imports) != 1 || prog.Imports[0] != "uart" {
		t.Errorf("imports = %v", prog.Imports)
	}
	// Statics: idx, rfid[12], busy.
	if len(prog.Statics) != 3 {
		t.Fatalf("statics = %v", prog.Statics)
	}
	if prog.Statics[1].Size != 12 {
		t.Errorf("rfid size = %d", prog.Statics[1].Size)
	}
	names := []string{"init", "destroy", "read", "newdata", "readDone",
		"invalidConfiguration", "uartInUse", "timeOut"}
	for _, n := range names {
		if prog.Handler(n) == nil {
			t.Errorf("missing handler %q", n)
		}
	}
	if prog.Handler("timeOut").Kind != bytecode.KindError {
		t.Error("timeOut must be an error handler")
	}
	if prog.Handler("newdata").NParams != 1 {
		t.Error("newdata must take one parameter")
	}
	if err := prog.Verify(); err != nil {
		t.Fatal(err)
	}
	size := prog.Size()
	if size == 0 || size > 600 {
		t.Errorf("compiled size = %d bytes, want a compact driver", size)
	}
	t.Logf("Listing 1 compiles to %d bytes (paper: 150 bytes)", size)
}

func TestSLoC(t *testing.T) {
	if n := SLoC("a;\n# comment\n\n  b;\n"); n != 2 {
		t.Errorf("SLoC = %d, want 2", n)
	}
	// Listing 1 as printed (with comments and blanks) has 43 SLoC in the
	// paper's counting; ours counts code lines only.
	n := SLoC(listing1)
	if n < 30 || n > 45 {
		t.Errorf("Listing 1 SLoC = %d, expected in the Table 3 ballpark", n)
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := Lex("event init():\n    idx = 0x1F; # hi\n")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TokenKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	want := []TokenKind{TokEvent, TokIdent, TokLParen, TokRParen, TokColon, TokNewline,
		TokIndent, TokIdent, TokAssign, TokInt, TokSemicolon, TokNewline, TokDedent, TokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
	// 0x1F must lex with value 31.
	for _, tok := range toks {
		if tok.Kind == TokInt && tok.Val != 31 {
			t.Errorf("hex literal value = %d", tok.Val)
		}
	}
}

func TestLexerCharLiterals(t *testing.T) {
	toks, err := Lex("x = 'a';\ny = '\\n';\n")
	if err != nil {
		t.Fatal(err)
	}
	var vals []int64
	for _, tok := range toks {
		if tok.Kind == TokChar {
			vals = append(vals, tok.Val)
		}
	}
	if len(vals) != 2 || vals[0] != 'a' || vals[1] != '\n' {
		t.Fatalf("char values = %v", vals)
	}
}

func TestLexerErrors(t *testing.T) {
	cases := []string{
		"x = 'ab;\n",       // unterminated char
		"x = 99999999999;", // out of range
		"x = @;\n",         // bad character
		"event a():\n        x;\n    y;\n   z;\n", // inconsistent dedent
	}
	for _, src := range cases {
		if _, err := Lex(src); err == nil {
			t.Errorf("source %q must fail to lex", src)
		}
	}
}

func TestParserErrors(t *testing.T) {
	cases := map[string]string{
		"no handlers":        "import uart;\n",
		"bad import":         "import;\n",
		"unknown top level":  "banana x;\n",
		"missing colon":      "event init()\n    pass;\n",
		"empty block":        "event init():\nevent destroy():\n    pass;\n",
		"bad param type":     "event init(foo x):\n    pass;\n",
		"missing semicolon":  "event init():\n    x = 1\n",
		"bad assign op":      "event init():\n    x * 1;\n",
		"bad signal dest":    "event init():\n    signal 5.x();\n",
		"array len zero":     "uint8_t a[0];\nevent init():\n    pass;\n",
		"trailing operators": "event init():\n    x = 1 +;\n",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: must fail to parse", name)
		}
	}
}

func TestCheckerErrors(t *testing.T) {
	cases := map[string]string{
		"missing init": `
event destroy():
    pass;
`,
		"missing destroy": `
event init():
    pass;
`,
		"init with params": `
event init(char c):
    pass;
event destroy():
    pass;
`,
		"error init": `
error init():
    pass;
event destroy():
    pass;
`,
		"unknown library": `
import floppy;
event init():
    pass;
event destroy():
    pass;
`,
		"duplicate import": `
import uart;
import uart;
event init():
    pass;
event destroy():
    pass;
`,
		"signal unimported lib": `
event init():
    signal uart.read();
event destroy():
    pass;
`,
		"signal unknown op": `
import uart;
event init():
    signal uart.frobnicate();
event destroy():
    pass;
`,
		"signal wrong arity": `
import uart;
event init():
    signal uart.init(9600);
event destroy():
    pass;
`,
		"signal unknown this handler": `
event init():
    signal this.missing();
event destroy():
    pass;
`,
		"signal this wrong arity": `
event init():
    signal this.destroy(1, 2);
event destroy():
    pass;
`,
		"undeclared variable": `
event init():
    x = 1;
event destroy():
    pass;
`,
		"duplicate static": `
uint8_t a;
uint8_t a;
event init():
    pass;
event destroy():
    pass;
`,
		"duplicate handler": `
event init():
    pass;
event init():
    pass;
event destroy():
    pass;
`,
		"index scalar": `
uint8_t a;
event init():
    a[0] = 1;
event destroy():
    pass;
`,
		"assign whole array": `
uint8_t a[4];
event init():
    a = 1;
event destroy():
    pass;
`,
		"array as scalar": `
uint8_t a[4];
uint8_t b;
event init():
    b = a;
event destroy():
    pass;
`,
		"postfix on array": `
uint8_t a[4];
event init():
    a++;
event destroy():
    pass;
`,
		"local shadows static": `
uint8_t a;
event init():
    uint8_t a;
event destroy():
    pass;
`,
		"local shadows const": `
event init():
    uint8_t USART_PARITY_NONE;
event destroy():
    pass;
`,
		"static shadows const": `
uint8_t USART_PARITY_NONE;
event init():
    pass;
event destroy():
    pass;
`,
		"local array": `
event init():
    uint8_t a[4];
event destroy():
    pass;
`,
	}
	for name, src := range cases {
		if _, err := Compile(strings.TrimLeft(src, "\n"), 1); err == nil {
			t.Errorf("%s: must fail to compile", name)
		}
	}
}

func TestCompileControlFlow(t *testing.T) {
	src := `event init():
    uint8_t i = 0;
    uint8_t total = 0;
    while i < 10:
        if i % 2 == 0:
            total += i;
        elif i == 5:
            total -= 1;
        else:
            pass;
        i++;

event destroy():
    pass;
`
	prog, err := Compile(src, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCompileExpressions(t *testing.T) {
	src := `int32_t a, b;

event init():
    a = (1 + 2) * 3 - 4 / 2 % 3;
    b = (a << 4) >> 2 & 0xff | 0x10 ^ 0x01;
    a = -b;
    b = ~a;
    a = !b;
    if a and b or not a:
        b = 70000;

event destroy():
    pass;
`
	prog, err := Compile(src, 7)
	if err != nil {
		t.Fatal(err)
	}
	// 70000 requires a 32-bit push.
	found := false
	for _, h := range prog.Handlers {
		for i := 0; i < len(h.Code); {
			op := bytecode.Op(h.Code[i])
			if op == bytecode.OpPushI32 {
				found = true
			}
			i += 1 + op.OperandWidth()
		}
	}
	if !found {
		t.Error("expected a push.i32 for the 70000 literal")
	}
}

func TestBuiltinConstsCompile(t *testing.T) {
	src := `import i2c;

event init():
    signal i2c.write(BMP180_ADDR, BMP180_REG_CTRL, BMP180_CMD_TEMP, 1);

event destroy():
    pass;
`
	if _, err := Compile(src, 9); err != nil {
		t.Fatal(err)
	}
}

func TestCompiledSizesAreCompact(t *testing.T) {
	// The whole point of bytecode encapsulation (Section 4.1): drivers are
	// small enough for OTA distribution. Table 3's DSL drivers are 30-234
	// bytes; ours must stay within the same order of magnitude.
	prog, err := Compile(listing1Joined, 0xed3f0ac1)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Size() > 512 {
		t.Errorf("RFID driver compiled to %d bytes; must stay OTA-friendly", prog.Size())
	}
}
