package dsl

import (
	"fmt"

	"micropnp/internal/bytecode"
)

// symbol describes one resolved variable.
type symbol struct {
	isStatic bool
	slot     int // static slot or local index
	arrayLen int // 0 for scalars
	typ      Type
}

// checker performs semantic analysis: symbol resolution, arity checking for
// signals, array/scalar usage discipline and the structural rules of the
// language (init/destroy presence, handler uniqueness, local limits).
type checker struct {
	prog     *Program
	statics  map[string]*symbol
	order    []string // static declaration order
	imports  map[string]*NativeLib
	handlers map[string]*HandlerDecl

	// per-handler state
	locals     map[string]*symbol
	localCount int
}

func errAt(line int, format string, args ...any) error {
	return fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))
}

func check(prog *Program) (*checker, error) {
	c := &checker{
		prog:     prog,
		statics:  map[string]*symbol{},
		imports:  map[string]*NativeLib{},
		handlers: map[string]*HandlerDecl{},
	}
	for _, im := range prog.Imports {
		lib, ok := NativeLibs[im]
		if !ok {
			return nil, fmt.Errorf("import %q: no such native library", im)
		}
		if _, dup := c.imports[im]; dup {
			return nil, fmt.Errorf("import %q: duplicate import", im)
		}
		c.imports[im] = lib
	}
	for _, d := range prog.Statics {
		if _, dup := c.statics[d.Name]; dup {
			return nil, errAt(d.Line, "static %q redeclared", d.Name)
		}
		if _, isConst := BuiltinConsts[d.Name]; isConst {
			return nil, errAt(d.Line, "%q shadows a builtin constant", d.Name)
		}
		c.statics[d.Name] = &symbol{isStatic: true, slot: len(c.order), arrayLen: d.ArrayLen, typ: d.Type}
		c.order = append(c.order, d.Name)
	}
	if len(c.order) > bytecode.MaxStatics {
		return nil, fmt.Errorf("too many statics (%d, max %d)", len(c.order), bytecode.MaxStatics)
	}
	for _, h := range prog.Handlers {
		if _, dup := c.handlers[h.Name]; dup {
			return nil, errAt(h.Line, "handler %q redeclared", h.Name)
		}
		c.handlers[h.Name] = h
	}
	for _, required := range []string{"init", "destroy"} {
		h, ok := c.handlers[required]
		if !ok {
			return nil, fmt.Errorf("drivers must implement the %s handler", required)
		}
		if h.IsError {
			return nil, errAt(h.Line, "%s must be an event handler, not an error handler", required)
		}
		if len(h.Params) != 0 {
			return nil, errAt(h.Line, "%s must take no parameters", required)
		}
	}
	for _, h := range prog.Handlers {
		if err := c.checkHandler(h); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (c *checker) checkHandler(h *HandlerDecl) error {
	c.locals = map[string]*symbol{}
	c.localCount = 0
	for _, p := range h.Params {
		if _, dup := c.locals[p.Name]; dup {
			return errAt(p.Line, "parameter %q redeclared", p.Name)
		}
		if _, isConst := BuiltinConsts[p.Name]; isConst {
			return errAt(p.Line, "parameter %q shadows a builtin constant", p.Name)
		}
		c.locals[p.Name] = &symbol{slot: c.localCount, typ: p.Type}
		c.localCount++
	}
	if c.localCount > bytecode.MaxLocals {
		return errAt(h.Line, "handler %q: too many parameters", h.Name)
	}
	return c.checkStmts(h.Body)
}

func (c *checker) checkStmts(stmts []Stmt) error {
	for _, s := range stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch n := s.(type) {
	case *PassStmt:
		return nil
	case *LocalDecl:
		d := n.Decl
		if d.ArrayLen != 0 {
			return errAt(n.Line, "local arrays are not supported; declare %q as a static", d.Name)
		}
		if _, dup := c.locals[d.Name]; dup {
			return errAt(n.Line, "local %q redeclared", d.Name)
		}
		if _, shadows := c.statics[d.Name]; shadows {
			return errAt(n.Line, "local %q shadows a static", d.Name)
		}
		if _, isConst := BuiltinConsts[d.Name]; isConst {
			return errAt(n.Line, "local %q shadows a builtin constant", d.Name)
		}
		if d.Init != nil {
			if err := c.checkExpr(d.Init); err != nil {
				return err
			}
		}
		if c.localCount >= bytecode.MaxLocals {
			return errAt(n.Line, "too many locals (max %d)", bytecode.MaxLocals)
		}
		c.locals[d.Name] = &symbol{slot: c.localCount, typ: d.Type}
		c.localCount++
		return nil
	case *AssignStmt:
		sym, err := c.resolve(n.Target.Name, n.Line)
		if err != nil {
			return err
		}
		if n.Target.Index != nil {
			if sym.arrayLen == 0 {
				return errAt(n.Line, "%q is not an array", n.Target.Name)
			}
			if !sym.isStatic {
				return errAt(n.Line, "internal: local arrays unsupported")
			}
			if err := c.checkExpr(n.Target.Index); err != nil {
				return err
			}
		} else if sym.arrayLen != 0 {
			return errAt(n.Line, "cannot assign to array %q without an index", n.Target.Name)
		}
		return c.checkExpr(n.Value)
	case *SignalStmt:
		return c.checkSignal(n)
	case *ReturnStmt:
		if n.Value == nil {
			return nil
		}
		// Bare array return is allowed; everything else is a scalar expr.
		if id, ok := n.Value.(*Ident); ok {
			if sym, err := c.resolve(id.Name, n.Line); err == nil && sym.arrayLen != 0 {
				return nil
			}
		}
		return c.checkExpr(n.Value)
	case *IfStmt:
		if err := c.checkExpr(n.Cond); err != nil {
			return err
		}
		if err := c.checkStmts(n.Then); err != nil {
			return err
		}
		if n.Else != nil {
			return c.checkStmts(n.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkExpr(n.Cond); err != nil {
			return err
		}
		return c.checkStmts(n.Body)
	case *ExprStmt:
		return c.checkExpr(n.X)
	default:
		return fmt.Errorf("internal: unknown statement %T", s)
	}
}

func (c *checker) checkSignal(n *SignalStmt) error {
	for _, a := range n.Args {
		if err := c.checkExpr(a); err != nil {
			return err
		}
	}
	if n.Dest == "this" {
		h, ok := c.handlers[n.Event]
		if !ok {
			return errAt(n.Line, "signal this.%s: no such handler", n.Event)
		}
		if len(h.Params) != len(n.Args) {
			return errAt(n.Line, "signal this.%s: handler takes %d arguments, got %d",
				n.Event, len(h.Params), len(n.Args))
		}
		return nil
	}
	lib, ok := c.imports[n.Dest]
	if !ok {
		return errAt(n.Line, "signal %s.%s: library %q not imported", n.Dest, n.Event, n.Dest)
	}
	arity, ok := lib.Ops[n.Event]
	if !ok {
		return errAt(n.Line, "signal %s.%s: library %q has no operation %q", n.Dest, n.Event, n.Dest, n.Event)
	}
	if arity != len(n.Args) {
		return errAt(n.Line, "signal %s.%s: operation takes %d arguments, got %d",
			n.Dest, n.Event, arity, len(n.Args))
	}
	return nil
}

func (c *checker) resolve(name string, line int) (*symbol, error) {
	if sym, ok := c.locals[name]; ok {
		return sym, nil
	}
	if sym, ok := c.statics[name]; ok {
		return sym, nil
	}
	return nil, errAt(line, "undeclared identifier %q", name)
}

func (c *checker) checkExpr(e Expr) error {
	switch n := e.(type) {
	case *IntLit:
		return nil
	case *Ident:
		if _, isConst := BuiltinConsts[n.Name]; isConst {
			return nil
		}
		sym, err := c.resolve(n.Name, n.Line)
		if err != nil {
			return err
		}
		if sym.arrayLen != 0 {
			return errAt(n.Line, "array %q used as a scalar (index it or return it)", n.Name)
		}
		return nil
	case *IndexExpr:
		sym, err := c.resolve(n.Name, n.Line)
		if err != nil {
			return err
		}
		if sym.arrayLen == 0 {
			return errAt(n.Line, "%q is not an array", n.Name)
		}
		return c.checkExpr(n.Index)
	case *UnaryExpr:
		return c.checkExpr(n.X)
	case *BinaryExpr:
		if err := c.checkExpr(n.L); err != nil {
			return err
		}
		return c.checkExpr(n.R)
	case *PostfixExpr:
		sym, err := c.resolve(n.Name, n.Line)
		if err != nil {
			return err
		}
		if sym.arrayLen != 0 {
			return errAt(n.Line, "cannot apply ++/-- to array %q", n.Name)
		}
		return nil
	default:
		return fmt.Errorf("internal: unknown expression %T", e)
	}
}
