package dsl

import (
	"fmt"
	"strconv"
	"strings"
)

// Lex tokenises DSL source, producing Python-style INDENT/DEDENT tokens for
// block structure. Comments run from '#' to end of line. Blank lines and
// comment-only lines produce no tokens.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, indents: []int{0}}
	if err := l.run(); err != nil {
		return nil, err
	}
	return l.tokens, nil
}

type lexer struct {
	src       string
	pos       int
	line      int // 0-based
	lineStart int
	tokens    []Token
	indents   []int
}

func (l *lexer) errf(col int, format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", l.line+1, col+1, fmt.Sprintf(format, args...))
}

func (l *lexer) emit(kind TokenKind, text string, val int64, col int) {
	l.tokens = append(l.tokens, Token{Kind: kind, Text: text, Val: val, Line: l.line + 1, Col: col + 1})
}

func (l *lexer) run() error {
	lines := strings.Split(l.src, "\n")
	for i, raw := range lines {
		l.line = i
		if err := l.lexLine(raw); err != nil {
			return err
		}
	}
	// Close any open blocks.
	for len(l.indents) > 1 {
		l.indents = l.indents[:len(l.indents)-1]
		l.emit(TokDedent, "", 0, 0)
	}
	l.emit(TokEOF, "", 0, 0)
	return nil
}

func (l *lexer) lexLine(raw string) error {
	// Measure indentation: tabs count as 8 columns (consistent use assumed).
	indent := 0
	body := raw
	for len(body) > 0 {
		switch body[0] {
		case ' ':
			indent++
		case '\t':
			indent += 8 - indent%8
		default:
			goto measured
		}
		body = body[1:]
	}
measured:
	trimmed := strings.TrimRight(body, " \t\r")
	if trimmed == "" || trimmed[0] == '#' {
		return nil // blank or comment-only line
	}

	cur := l.indents[len(l.indents)-1]
	switch {
	case indent > cur:
		l.indents = append(l.indents, indent)
		l.emit(TokIndent, "", 0, 0)
	case indent < cur:
		for len(l.indents) > 1 && l.indents[len(l.indents)-1] > indent {
			l.indents = l.indents[:len(l.indents)-1]
			l.emit(TokDedent, "", 0, 0)
		}
		if l.indents[len(l.indents)-1] != indent {
			return l.errf(0, "inconsistent indentation")
		}
	}

	if err := l.lexTokens(trimmed, len(raw)-len(body)); err != nil {
		return err
	}
	l.emit(TokNewline, "", 0, len(raw))
	return nil
}

func (l *lexer) lexTokens(s string, baseCol int) error {
	i := 0
	for i < len(s) {
		c := s[i]
		col := baseCol + i
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			return nil // comment to end of line
		case isIdentStart(c):
			j := i + 1
			for j < len(s) && isIdentPart(s[j]) {
				j++
			}
			word := s[i:j]
			if kw, ok := keywords[word]; ok {
				l.emit(kw, word, 0, col)
			} else {
				l.emit(TokIdent, word, 0, col)
			}
			i = j
		case c >= '0' && c <= '9':
			j := i + 1
			for j < len(s) && (isIdentPart(s[j])) {
				j++
			}
			text := s[i:j]
			v, err := strconv.ParseInt(text, 0, 64)
			if err != nil {
				return l.errf(col, "bad integer literal %q", text)
			}
			if v > 0x7fffffff || v < -0x80000000 {
				return l.errf(col, "integer literal %q out of 32-bit range", text)
			}
			l.emit(TokInt, text, v, col)
			i = j
		case c == '\'':
			// Character literal: 'x' or escaped '\n' '\r' '\t' '\0' '\\' '\''.
			if i+2 < len(s) && s[i+1] == '\\' && i+3 < len(s) && s[i+3] == '\'' {
				var v byte
				switch s[i+2] {
				case 'n':
					v = '\n'
				case 'r':
					v = '\r'
				case 't':
					v = '\t'
				case '0':
					v = 0
				case '\\':
					v = '\\'
				case '\'':
					v = '\''
				default:
					return l.errf(col, "bad escape '\\%c'", s[i+2])
				}
				l.emit(TokChar, s[i:i+4], int64(v), col)
				i += 4
			} else if i+2 < len(s) && s[i+2] == '\'' {
				l.emit(TokChar, s[i:i+3], int64(s[i+1]), col)
				i += 3
			} else {
				return l.errf(col, "unterminated character literal")
			}
		default:
			kind, width, err := l.operator(s[i:], col)
			if err != nil {
				return err
			}
			l.emit(kind, s[i:i+width], 0, col)
			i += width
		}
	}
	return nil
}

func (l *lexer) operator(s string, col int) (TokenKind, int, error) {
	two := map[string]TokenKind{
		"==": TokEq, "!=": TokNe, "<=": TokLe, ">=": TokGe,
		"<<": TokShl, ">>": TokShr, "++": TokPlusPlus, "--": TokMinusMinus,
		"+=": TokPlusEq, "-=": TokMinusEq,
	}
	if len(s) >= 2 {
		if k, ok := two[s[:2]]; ok {
			return k, 2, nil
		}
	}
	one := map[byte]TokenKind{
		'(': TokLParen, ')': TokRParen, '[': TokLBracket, ']': TokRBracket,
		',': TokComma, ';': TokSemicolon, ':': TokColon, '.': TokDot,
		'=': TokAssign, '+': TokPlus, '-': TokMinus, '*': TokStar,
		'/': TokSlash, '%': TokPercent, '&': TokAmp, '|': TokPipe,
		'^': TokCaret, '~': TokTilde, '<': TokLt, '>': TokGt, '!': TokBang,
	}
	if k, ok := one[s[0]]; ok {
		return k, 1, nil
	}
	return TokEOF, 0, l.errf(col, "unexpected character %q", s[0])
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// SLoC counts source lines of code: non-blank, non-comment-only lines. This
// is the development-effort metric of Table 3.
func SLoC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t != "" && !strings.HasPrefix(t, "#") {
			n++
		}
	}
	return n
}
