// Package dsl implements the µPnP driver Domain-Specific Language of
// Section 4.1: a typed, event-based language with Python-inspired syntax.
// Drivers define event and error handlers that run to completion; all I/O is
// split-phase through the signal statement; the compiler translates drivers
// into the compact bytecode of internal/bytecode for over-the-air
// distribution and interpretation by internal/vm.
package dsl

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokNewline
	TokIndent
	TokDedent
	TokIdent
	TokInt
	TokChar // character literal, e.g. 'a'

	// Keywords.
	TokImport
	TokEvent
	TokError
	TokSignal
	TokReturn
	TokIf
	TokElif
	TokElse
	TokWhile
	TokPass
	TokTrue
	TokFalse
	TokAnd
	TokOr
	TokNot
	TokThis

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBracket
	TokRBracket
	TokComma
	TokSemicolon
	TokColon
	TokDot
	TokAssign   // =
	TokPlusEq   // +=
	TokMinusEq  // -=
	TokPlusPlus // ++
	TokMinusMinus
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp
	TokPipe
	TokCaret
	TokTilde
	TokShl
	TokShr
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
	TokBang
)

var tokenNames = map[TokenKind]string{
	TokEOF: "EOF", TokNewline: "newline", TokIndent: "indent", TokDedent: "dedent",
	TokIdent: "identifier", TokInt: "integer", TokChar: "char literal",
	TokImport: "import", TokEvent: "event", TokError: "error", TokSignal: "signal",
	TokReturn: "return", TokIf: "if", TokElif: "elif", TokElse: "else",
	TokWhile: "while", TokPass: "pass", TokTrue: "true", TokFalse: "false",
	TokAnd: "and", TokOr: "or", TokNot: "not", TokThis: "this",
	TokLParen: "(", TokRParen: ")", TokLBracket: "[", TokRBracket: "]",
	TokComma: ",", TokSemicolon: ";", TokColon: ":", TokDot: ".",
	TokAssign: "=", TokPlusEq: "+=", TokMinusEq: "-=",
	TokPlusPlus: "++", TokMinusMinus: "--",
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/", TokPercent: "%",
	TokAmp: "&", TokPipe: "|", TokCaret: "^", TokTilde: "~",
	TokShl: "<<", TokShr: ">>",
	TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
	TokBang: "!",
}

func (k TokenKind) String() string {
	if n, ok := tokenNames[k]; ok {
		return n
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]TokenKind{
	"import": TokImport, "event": TokEvent, "error": TokError,
	"signal": TokSignal, "return": TokReturn,
	"if": TokIf, "elif": TokElif, "else": TokElse, "while": TokWhile,
	"pass": TokPass, "true": TokTrue, "false": TokFalse,
	"and": TokAnd, "or": TokOr, "not": TokNot, "this": TokThis,
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Val  int64 // value for TokInt and TokChar
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokInt, TokChar:
		return fmt.Sprintf("%v(%s)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// Pos renders the token position for error messages.
func (t Token) Pos() string { return fmt.Sprintf("%d:%d", t.Line, t.Col) }
