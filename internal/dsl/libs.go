package dsl

// NativeLib describes the event API a native interconnect library exposes to
// drivers (Section 4.2): operations the driver may signal, events the
// library delivers back to the driver, and the error events it can raise.
type NativeLib struct {
	Name string
	// Ops maps signalable operation names to their arity.
	Ops map[string]int
	// Delivers lists the driver-side event names the library invokes, with
	// their parameter counts (informational; drivers need not handle all).
	Delivers map[string]int
	// Errors lists the error events the library can raise.
	Errors []string
}

// NativeLibs is the registry of interconnect libraries available to drivers.
// It mirrors the native interconnect libraries of the µPnP execution
// environment (Figure 8) plus the split-phase timer needed by conversion
// based sensors such as the BMP180.
var NativeLibs = map[string]*NativeLib{
	"uart": {
		Name: "uart",
		Ops: map[string]int{
			"init":  4, // baud, parity, stop bits, data bits
			"reset": 0,
			"read":  0, // start delivering newdata events
			"write": 1, // transmit one byte
		},
		Delivers: map[string]int{"newdata": 1, "writeDone": 0},
		Errors:   []string{"invalidConfiguration", "uartInUse", "timeOut"},
	},
	"adc": {
		Name: "adc",
		Ops: map[string]int{
			"read": 0, // start one conversion
		},
		Delivers: map[string]int{"sample": 1},
		Errors:   []string{"adcFault"},
	},
	"i2c": {
		Name: "i2c",
		Ops: map[string]int{
			"read":  3, // addr, reg, n (n <= 4; result packed big-endian)
			"write": 4, // addr, reg, value, n
		},
		Delivers: map[string]int{"i2cdata": 2, "i2cack": 0},
		Errors:   []string{"i2cNack"},
	},
	"spi": {
		Name: "spi",
		Ops: map[string]int{
			"transfer": 2, // value (big-endian packed), n (n <= 4)
		},
		Delivers: map[string]int{"spidata": 2},
		Errors:   []string{"spiFault"},
	},
	"timer": {
		Name: "timer",
		Ops: map[string]int{
			"start": 1, // milliseconds
		},
		Delivers: map[string]int{"timerFired": 0},
	},
}

// BuiltinConsts are the named constants available in driver source, mirroring
// the identifiers used in Listing 1 of the paper.
var BuiltinConsts = map[string]int32{
	"USART_PARITY_NONE": 0,
	"USART_PARITY_EVEN": 1,
	"USART_PARITY_ODD":  2,
	"USART_STOP_BITS_1": 1,
	"USART_STOP_BITS_2": 2,
	"USART_DATA_BITS_5": 5,
	"USART_DATA_BITS_6": 6,
	"USART_DATA_BITS_7": 7,
	"USART_DATA_BITS_8": 8,
	"USART_DATA_BITS_9": 9,

	// BMP180 register interface, for I²C driver readability.
	"BMP180_ADDR":      0x77,
	"BMP180_REG_CTRL":  0xF4,
	"BMP180_REG_OUT":   0xF6,
	"BMP180_REG_CALIB": 0xAA,
	"BMP180_CMD_TEMP":  0x2E,
	"BMP180_CMD_PRESS": 0x34,

	// PCF8574 port expander (relay driver).
	"PCF8574_ADDR": 0x20,

	// ADXL345 accelerometer (SPI driver).
	"ADXL_REG_POWER_CTL": 0x2D,
	"ADXL_MEASURE":       0x08,
	"ADXL_READ_X":        0xF2, // read|multi|0x32
	"ADXL_READ_Y":        0xF4, // read|multi|0x34
	"ADXL_READ_Z":        0xF6, // read|multi|0x36
}
