// Package micropnp is a from-scratch Go reproduction of "µPnP: Plug and Play
// Peripherals for the Internet of Things" (Yang et al., EuroSys 2015): a
// hardware/software system for plug-and-play integration of third-party
// peripherals with resource-constrained IoT devices.
//
// The implementation lives under internal/:
//
//   - hw        — multivibrator-based peripheral identification (Section 3)
//   - energy    — the one-year energy model behind Figure 12 (Section 6.1)
//   - bus       — simulated interconnects (ADC/I²C/SPI/UART) + the four
//     datasheet-faithful evaluation peripherals
//   - dsl       — the driver language: lexer, parser, checker, compiler
//     (Section 4.1)
//   - bytecode  — the compact 8-bit stack ISA drivers compile to
//   - vm        — the execution environment: interpreter, event router,
//     native interconnect libraries (Section 4.2)
//   - netsim    — discrete-event IPv6/RPL/SMRF network simulator
//   - proto     — the µPnP interaction protocol (Section 5.2)
//   - driver    — driver repository and the standard driver set
//   - thing, client, manager — the three network entities (Section 5)
//   - core      — the Deployment façade gluing everything together
//   - experiments — regenerates every table and figure of Section 6
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured comparison.
package micropnp
